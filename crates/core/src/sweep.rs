//! Resumable, memoized scenario sweeps over an artifact store.
//!
//! A sweep is a *cell ledger*: the full scenario grid is enumerated up front,
//! every cell gets a canonical 128-bit key, cells whose results are already in
//! the [`ArtifactStore`] are decoded instead of recomputed, and the rest fan
//! out across the same work-stealing pool `run_all_parallel` uses. Each
//! completed cell is published to the store **and then** journaled durably in
//! the sweep's [`SweepLedger`], so a sweep killed at any instant resumes with
//! zero recomputation of completed cells and — because cached results decode
//! `==` to the originals — renders **byte-identical** reports.
//!
//! Cell keys are input fingerprints: every field of the scenario that can
//! change the simulation outcome (model, machine size, job count, seed, load
//! scaling, scheduler, loop mode) plus [`psbench_sched::SCHED_VERSION`], so a
//! semantics change retires every memoized result at once. Nothing about a
//! key depends on grid position — two sweeps sharing cells share their cache.

use crate::harness::parallel_map;
use crate::suite::{Scenario, WorkloadDef, WorkloadKind};
use psbench_sim::SimulationResult;
use psbench_store::{result_fingerprint, ArtifactKind, ArtifactStore, Fnv128, SweepLedger};
use std::io;

/// A rectangular sweep grid: the cross product of models, machine sizes,
/// offered-load points, seeds, and schedulers, with a fixed per-cell job
/// count.
#[derive(Debug, Clone, PartialEq)]
pub struct GridSpec {
    /// Workload models to sweep.
    pub models: Vec<WorkloadKind>,
    /// Scheduler registry names to sweep.
    pub schedulers: Vec<String>,
    /// Interarrival scales (load points): < 1 compresses arrivals and raises
    /// the offered load.
    pub loads: Vec<f64>,
    /// Machine sizes in processors.
    pub machine_sizes: Vec<u32>,
    /// Workload RNG seeds.
    pub seeds: Vec<u64>,
    /// Jobs generated per cell.
    pub jobs: usize,
}

impl GridSpec {
    /// Enumerate every cell of the grid, in canonical order (models outermost,
    /// schedulers innermost). The order — and therefore any report rendered
    /// from a sweep of it — is a pure function of the spec.
    pub fn enumerate(&self) -> Vec<Scenario> {
        let mut cells = Vec::with_capacity(
            self.models.len()
                * self.machine_sizes.len()
                * self.loads.len()
                * self.seeds.len()
                * self.schedulers.len(),
        );
        for &kind in &self.models {
            for &machine_size in &self.machine_sizes {
                for &load in &self.loads {
                    for &seed in &self.seeds {
                        for scheduler in &self.schedulers {
                            let workload = WorkloadDef {
                                kind,
                                machine_size,
                                jobs: self.jobs,
                                seed,
                                interarrival_scale: load,
                            };
                            let name = format!("{}-m{machine_size}-l{load}-s{seed}", kind.name());
                            cells.push(Scenario::new(name, workload, scheduler));
                        }
                    }
                }
            }
        }
        cells
    }
}

/// The canonical memoization key of one sweep cell: a fingerprint of every
/// input that determines the cell's [`SimulationResult`], bound to the
/// current [`psbench_sched::SCHED_VERSION`]. Scenario *names* are display
/// strings and deliberately excluded.
pub fn cell_key(scenario: &Scenario) -> u128 {
    let mut h = Fnv128::new();
    h.write_str("cell");
    h.write_u32(psbench_sched::SCHED_VERSION);
    h.write_str(scenario.workload.kind.name());
    h.write_u32(scenario.workload.machine_size);
    h.write_u64(scenario.workload.jobs as u64);
    h.write_u64(scenario.workload.seed);
    h.write_f64(scenario.workload.interarrival_scale);
    h.write_str(&scenario.scheduler);
    h.write_u64(scenario.closed_loop as u64);
    h.finish()
}

/// The memoization key of simulating a stored *trace* (rather than a model
/// cell) under a scheduler — the key `psbench simulate --store` uses.
pub fn trace_cell_key(
    trace_fp: u128,
    scheduler: &str,
    machine_size: u32,
    closed_loop: bool,
) -> u128 {
    let mut h = Fnv128::new();
    h.write_str("trace-cell");
    h.write_u32(psbench_sched::SCHED_VERSION);
    h.write(&trace_fp.to_le_bytes());
    h.write_str(scheduler);
    h.write_u32(machine_size);
    h.write_u64(closed_loop as u64);
    h.finish()
}

/// The identity of a whole sweep — its ledger key: the sweep name plus every
/// cell key in order. Re-running the same grid resumes the same ledger;
/// changing the grid (or any cell input) starts a fresh one.
pub fn sweep_key(name: &str, cell_keys: &[u128]) -> u128 {
    let mut h = Fnv128::new();
    h.write_str("sweep");
    h.write_str(name);
    h.write_u64(cell_keys.len() as u64);
    for &key in cell_keys {
        h.write(&key.to_le_bytes());
    }
    h.finish()
}

/// What a resumable sweep run did.
#[derive(Debug)]
pub struct SweepOutcome {
    /// Completed cells in grid order — every cached cell followed by every
    /// cell computed this run, interleaved exactly as the grid enumerates
    /// them. When [`SweepOutcome::pending`] is zero this is the full grid.
    pub results: Vec<(Scenario, SimulationResult)>,
    /// Cells simulated by this run.
    pub computed: usize,
    /// Cells served from the store without recomputation.
    pub cached: usize,
    /// Cells left unrun by a `limit` (zero on an unlimited run).
    pub pending: usize,
}

/// Run (or resume) a sweep against a store.
///
/// All cells are enumerated and keyed up front; cells whose results are in
/// the store are decoded, the rest are simulated on `threads` work-stealing
/// workers. Each worker publishes its result artifact first and journals the
/// cell in the sweep ledger second, so the ledger never references a missing
/// result no matter where the process dies.
///
/// `limit` caps how many cells this run may *compute* (cached cells are
/// free): `Some(n)` stops after the first `n` uncached cells in grid order,
/// leaving the rest [`SweepOutcome::pending`]. That is the deterministic
/// twin of `SIGKILL` — the store and ledger are left in exactly the state an
/// interrupted unlimited run would leave after completing those cells — and
/// is how the integration tests (and `psbench sweep grid --max-cells`)
/// exercise interrupt/resume.
///
/// On resume, any cell the ledger already journals is cross-checked: the
/// stored artifact must fingerprint to the journaled value, so a corrupted
/// store surfaces as [`io::ErrorKind::InvalidData`] instead of a silently
/// different report.
pub fn run_sweep_resumable(
    name: &str,
    scenarios: &[Scenario],
    store: &ArtifactStore,
    threads: usize,
    limit: Option<usize>,
) -> io::Result<SweepOutcome> {
    let keys: Vec<u128> = scenarios.iter().map(cell_key).collect();
    let ledger = SweepLedger::open(store, sweep_key(name, &keys))?;
    let journaled = ledger.replay()?;

    let todo: Vec<usize> = (0..scenarios.len())
        .filter(|&i| !store.has(ArtifactKind::Result, keys[i]))
        .collect();
    let cached = scenarios.len() - todo.len();
    let run_now = &todo[..limit.unwrap_or(todo.len()).min(todo.len())];
    let pending = todo.len() - run_now.len();

    // Fan the uncached cells across the pool. Publish-then-journal inside the
    // worker, so progress is durable cell by cell, not batch by batch.
    let computed: Vec<io::Result<(usize, SimulationResult)>> =
        parallel_map(run_now.len(), threads, |j| {
            let i = run_now[j];
            let result = scenarios[i].run();
            store.put_result(keys[i], &result)?;
            ledger.record(keys[i], result_fingerprint(&result))?;
            Ok((i, result))
        });

    // Load the cached cells on the same pool: a fully-warm sweep is decode
    // bound, and decoding is as parallel as simulating. Slot assembly is by
    // grid index, so thread count still never affects output order.
    let mut todo_mask = vec![false; scenarios.len()];
    for &i in &todo {
        todo_mask[i] = true;
    }
    let to_load: Vec<usize> = (0..scenarios.len()).filter(|&i| !todo_mask[i]).collect();
    let loaded: Vec<io::Result<(usize, SimulationResult)>> = parallel_map(
        to_load.len(),
        threads,
        |j| {
            let i = to_load[j];
            let (result, actual) =
                store.get_result_with_fingerprint(keys[i])?.ok_or_else(|| {
                    io::Error::new(
                        io::ErrorKind::NotFound,
                        format!(
                            "cell {} vanished from the store mid-sweep",
                            scenarios[i].name
                        ),
                    )
                })?;
            if let Some(&fp) = journaled.get(&keys[i]) {
                if actual != fp {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!(
                            "cell {}: stored result fingerprint {actual:016x} != journaled {fp:016x}",
                            scenarios[i].name
                        ),
                    ));
                }
            }
            Ok((i, result))
        },
    );

    let mut slots: Vec<Option<SimulationResult>> = vec![None; scenarios.len()];
    for done in computed.into_iter().chain(loaded) {
        let (i, result) = done?;
        slots[i] = Some(result);
    }

    let results = scenarios
        .iter()
        .zip(slots)
        .filter_map(|(s, r)| r.map(|r| (s.clone(), r)))
        .collect();
    Ok(SweepOutcome {
        results,
        computed: run_now.len(),
        cached,
        pending,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{results_table, run_all};

    fn scratch(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("psbench-sweep-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn small_grid() -> GridSpec {
        GridSpec {
            models: vec![WorkloadKind::Lublin99, WorkloadKind::Feitelson96],
            schedulers: vec!["fcfs".into(), "easy".into()],
            loads: vec![1.0, 0.5],
            machine_sizes: vec![64],
            seeds: vec![1, 2],
            jobs: 40,
        }
    }

    #[test]
    fn grid_enumeration_is_deterministic_and_complete() {
        let grid = small_grid();
        let a = grid.enumerate();
        let b = grid.enumerate();
        assert_eq!(a.len(), 2 * 2 * 2 * 2);
        assert_eq!(
            a.iter().map(|s| s.name.clone()).collect::<Vec<_>>(),
            b.iter().map(|s| s.name.clone()).collect::<Vec<_>>()
        );
        // Keys are unique across the grid.
        let mut keys: Vec<u128> = a.iter().map(cell_key).collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), a.len());
    }

    #[test]
    fn cell_keys_ignore_display_names_but_not_inputs() {
        let grid = small_grid();
        let cells = grid.enumerate();
        let mut renamed = cells[0].clone();
        renamed.name = "something else".into();
        assert_eq!(cell_key(&cells[0]), cell_key(&renamed));
        let mut reseeded = cells[0].clone();
        reseeded.workload.seed += 1;
        assert_ne!(cell_key(&cells[0]), cell_key(&reseeded));
    }

    #[test]
    fn sweep_matches_direct_run_and_resumes_without_recomputation() {
        let dir = scratch("resume");
        let store = ArtifactStore::open(&dir).unwrap();
        let cells = small_grid().enumerate();
        let direct = results_table("t", &run_all(&cells));

        // Interrupted run: compute only 5 of the 16 cells, then "die".
        let partial = run_sweep_resumable("demo", &cells, &store, 4, Some(5)).unwrap();
        assert_eq!(partial.computed, 5);
        assert_eq!(partial.cached, 0);
        assert_eq!(partial.pending, 11);
        assert_eq!(partial.results.len(), 5);

        // Resume: the 5 completed cells are served from the store.
        let resumed = run_sweep_resumable("demo", &cells, &store, 4, None).unwrap();
        assert_eq!(resumed.cached, 5);
        assert_eq!(resumed.computed, 11);
        assert_eq!(resumed.pending, 0);
        let table = results_table("t", &resumed.results);
        assert_eq!(table.to_csv(), direct.to_csv(), "byte-identical report");

        // Fully warm: zero computation, still byte-identical.
        let warm = run_sweep_resumable("demo", &cells, &store, 4, None).unwrap();
        assert_eq!(warm.computed, 0);
        assert_eq!(warm.cached, cells.len());
        assert_eq!(results_table("t", &warm.results).to_csv(), direct.to_csv());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupted_cached_cell_is_detected_on_resume() {
        let dir = scratch("tamper");
        let store = ArtifactStore::open(&dir).unwrap();
        let cells = small_grid().enumerate();
        run_sweep_resumable("demo", &cells, &store, 2, Some(1)).unwrap();
        // Swap the completed cell's artifact for a different (valid) result.
        let key = cell_key(&cells[0]);
        let mut other = store.get_result(key).unwrap().unwrap();
        other.events_processed += 1;
        std::fs::remove_file(store.path(ArtifactKind::Result, key)).unwrap();
        store.put_result(key, &other).unwrap();
        let err = run_sweep_resumable("demo", &cells, &store, 2, Some(0)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
