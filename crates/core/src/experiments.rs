//! The experiment catalogue: one function per experiment in EXPERIMENTS.md.
//!
//! The paper is a standards paper — it has no numeric result tables of its own —
//! so its "evaluation" is the set of claims and proposals in Sections 1–4. Every
//! function here regenerates one of them as a concrete table. The same functions
//! back the Criterion benches in `psbench-bench` and the tables recorded in
//! EXPERIMENTS.md.

use crate::harness::{
    default_threads, fmt, parallel_map, profile_parallel, run_all_parallel, Table,
};
use crate::suite::{canonical_schedulers, canonical_suite, Scenario, WorkloadDef, WorkloadKind};
use psbench_analyze::FidelityReport;
use psbench_metasim::{
    coallocate_via_queues, coallocate_via_reservations, standard_metasystem, CoallocationRequest,
};
use psbench_metrics::{
    compare_workloads, rank_by_weighted, workload_features, Objective, WeightedObjective,
};
use psbench_sched::by_name;
use psbench_sim::{SimConfig, SimJob, Simulation};
use psbench_swf::convert::{convert, ConvertOptions, Dialect};
use psbench_swf::validate;
use psbench_workload::{
    generate_raw_log, strip_dependencies, Downey97, OutageGenerator, RawLogProfile, SessionModel,
    WorkloadModel,
};

/// How large the experiments run: job counts and sweep densities. `quick()` keeps
/// everything small enough for tests and benches; `full()` is the scale recorded in
/// EXPERIMENTS.md.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale {
    /// Jobs per simulated workload.
    pub jobs: usize,
    /// Number of points in parameter sweeps (loads, weights).
    pub sweep_points: usize,
    /// Number of co-allocation requests in E7.
    pub requests: usize,
}

impl Scale {
    /// A fast configuration for tests and continuous benchmarking.
    pub fn quick() -> Self {
        Scale {
            jobs: 300,
            sweep_points: 3,
            requests: 20,
        }
    }

    /// The full configuration recorded in EXPERIMENTS.md.
    pub fn full() -> Self {
        Scale {
            jobs: 3000,
            sweep_points: 6,
            requests: 200,
        }
    }
}

/// Build the scenario for one (workload, scheduler) cell. Experiments that
/// sweep many independent cells collect batches of these and hand them to
/// [`run_all_parallel`], which preserves input order and bit-identical results.
fn scenario_for(def: WorkloadDef, scheduler: &str, closed_loop: bool) -> Scenario {
    let mut scenario = Scenario::new(format!("{}-{}", def.kind.name(), scheduler), def, scheduler);
    scenario.closed_loop = closed_loop;
    scenario
}

/// E1 — metric disagreement (Section 1.2, \[30\]): the ranking of two schedulers can
/// flip between mean response time and mean bounded slowdown as the load varies.
pub fn e1_metric_disagreement(scale: Scale) -> Table {
    let mut table = Table::new(
        "E1 — scheduler ranking under response time vs slowdown",
        &[
            "interarrival scale",
            "easy: mean response [s]",
            "sjf: mean response [s]",
            "easy: bounded slowdown",
            "sjf: bounded slowdown",
            "winner (response)",
            "winner (slowdown)",
            "metrics disagree?",
        ],
    );
    let scales = [1.0, 0.6, 0.4, 0.3, 0.25, 0.2];
    let points: Vec<f64> = scales
        .iter()
        .take(scale.sweep_points.max(2))
        .copied()
        .collect();
    let scenarios: Vec<Scenario> = points
        .iter()
        .flat_map(|&s| {
            let def = WorkloadDef {
                interarrival_scale: s,
                ..WorkloadDef::new(WorkloadKind::Lublin99, 128, scale.jobs, 1999)
            };
            ["easy", "sjf"].map(|sched| scenario_for(def, sched, false))
        })
        .collect();
    let runs = run_all_parallel(&scenarios, default_threads());
    for (i, &s) in points.iter().enumerate() {
        let (easy, sjf) = (&runs[2 * i].1, &runs[2 * i + 1].1);
        let results = vec![easy.scheduler_result(), sjf.scheduler_result()];
        let by_resp = psbench_metrics::rank_by_objective(&results, Objective::MeanResponseTime);
        let by_slow = psbench_metrics::rank_by_objective(&results, Objective::MeanBoundedSlowdown);
        table.push_row(vec![
            fmt(s),
            fmt(easy.mean_response_time()),
            fmt(sjf.mean_response_time()),
            fmt(easy.mean_bounded_slowdown()),
            fmt(sjf.mean_bounded_slowdown()),
            by_resp[0].clone(),
            by_slow[0].clone(),
            (by_resp != by_slow).to_string(),
        ]);
    }
    table
}

/// E2 — owner-weighted objective functions (Section 1.2, \[41\]): the best scheduler
/// changes as the weight between the user-centric and system-centric terms moves.
pub fn e2_objective_weights(scale: Scale) -> Table {
    let def = WorkloadDef {
        interarrival_scale: 0.35,
        ..WorkloadDef::new(WorkloadKind::Jann97, 128, scale.jobs, 1997)
    };
    let schedulers = ["fcfs", "sjf", "easy", "conservative"];
    let scenarios: Vec<Scenario> = schedulers
        .iter()
        .map(|s| scenario_for(def, s, false))
        .collect();
    let results: Vec<psbench_metrics::SchedulerResult> =
        run_all_parallel(&scenarios, default_threads())
            .iter()
            .map(|(_, r)| r.scheduler_result())
            .collect();
    let mut table = Table::new(
        "E2 — winner of the weighted objective as the user weight varies",
        &["user weight", "winner", "second"],
    );
    let n = scale.sweep_points.max(3);
    for i in 0..=n {
        let w = i as f64 / n as f64;
        let ranking = rank_by_weighted(&results, &WeightedObjective::with_user_weight(w));
        table.push_row(vec![fmt(w), ranking[0].clone(), ranking[1].clone()]);
    }
    table
}

/// E3 — workload-model comparison (Section 2.1, \[58\]): co-plot-style feature
/// distances between the four rigid-job models.
pub fn e3_model_comparison(scale: Scale) -> Table {
    let models = psbench_workload::standard_models(128);
    let features: Vec<_> = parallel_map(models.len(), default_threads(), |i| {
        let m = &models[i];
        workload_features(m.name(), &m.generate(scale.jobs, 58))
    });
    let matrix = compare_workloads(&features);
    let mut table = Table::new(
        "E3 — workload model features and pairwise distances",
        &[
            "model",
            "mean procs",
            "pow2 frac",
            "serial frac",
            "mean runtime [s]",
            "runtime CV",
            "nearest other model",
            "distance",
        ],
    );
    for (i, f) in features.iter().enumerate() {
        let (nearest, dist) = matrix.nearest(i).unwrap();
        table.push_row(vec![
            f.name.clone(),
            fmt(f.mean_procs),
            fmt(f.power_of_two_fraction),
            fmt(f.serial_fraction),
            fmt(f.mean_runtime),
            fmt(f.runtime_cv),
            matrix.names[nearest].clone(),
            fmt(dist),
        ]);
    }
    table
}

/// E4 — feedback (Section 2.2): the same session workload replayed open-loop versus
/// closed-loop. Under the closed loop the arrival process throttles itself when the
/// system is slow, so the measured degradation at high load is milder.
pub fn e4_feedback(scale: Scale) -> Table {
    let mut table = Table::new(
        "E4 — open versus closed (feedback) replay of a session workload",
        &[
            "interarrival scale",
            "open: mean response [s]",
            "closed: mean response [s]",
            "open / closed ratio",
        ],
    );
    let scales = [1.0, 0.5, 0.25, 0.15, 0.1];
    let points: Vec<f64> = scales
        .iter()
        .take(scale.sweep_points.max(2))
        .copied()
        .collect();
    let rows = parallel_map(points.len(), default_threads(), |i| {
        let s = points[i];
        let model = SessionModel::default();
        let mut log = model.generate(scale.jobs, 1998);
        log.scale_interarrivals(s);
        let jobs = SimJob::from_log(&log);
        // Open loop: strip the dependencies and replay recorded submit times.
        let mut open_log = log.clone();
        strip_dependencies(&mut open_log);
        let open_jobs = SimJob::from_log(&open_log);
        let mut easy = by_name("easy", 128).unwrap();
        let open = Simulation::new(SimConfig::new(128), open_jobs).run(easy.as_mut());
        let mut easy2 = by_name("easy", 128).unwrap();
        let closed = Simulation::new(SimConfig::new(128).closed_loop(), jobs).run(easy2.as_mut());
        let ratio = if closed.mean_response_time() > 0.0 {
            open.mean_response_time() / closed.mean_response_time()
        } else {
            0.0
        };
        vec![
            fmt(s),
            fmt(open.mean_response_time()),
            fmt(closed.mean_response_time()),
            fmt(ratio),
        ]
    });
    for row in rows {
        table.push_row(row);
    }
    table
}

/// E5 — outages (Section 2.2): scheduler performance without outages, with
/// unannounced failures, and with announced maintenance handled by a draining
/// scheduler.
pub fn e5_outages(scale: Scale) -> Table {
    let def = WorkloadDef {
        interarrival_scale: 0.8,
        ..WorkloadDef::new(WorkloadKind::Lublin99, 128, scale.jobs, 2000)
    };
    let log = def.generate();
    let horizon = log.duration() + 86_400;
    let jobs = SimJob::from_log(&log);
    let outages = OutageGenerator::for_machine(128).generate(horizon, 2000);
    let mut table = Table::new(
        "E5 — the cost of ignoring outage information",
        &[
            "configuration",
            "scheduler",
            "jobs killed",
            "mean response [s]",
            "utilization",
        ],
    );
    let cases = [
        ("no outages", "easy", false),
        ("outages, outage-blind scheduler", "easy", true),
        ("outages, draining scheduler", "draining-easy", true),
    ];
    let rows = parallel_map(cases.len(), default_threads(), |i| {
        let (name, sched, with_outages) = cases[i];
        let mut config = SimConfig::new(128);
        if with_outages {
            config = config.with_outages(outages.clone());
        }
        let mut s = by_name(sched, 128).unwrap();
        let r = Simulation::new(config, jobs.clone()).run(s.as_mut());
        vec![
            name.to_string(),
            sched.to_string(),
            r.kills.to_string(),
            fmt(r.mean_response_time()),
            fmt(r.system().utilization),
        ]
    });
    for row in rows {
        table.push_row(row);
    }
    table
}

/// E6 — the SWF pipeline (Section 2.3): four raw accounting-log dialects converted
/// to the standard format, validated, and round-tripped.
pub fn e6_swf_pipeline(scale: Scale) -> Table {
    let mut table = Table::new(
        "E6 — raw accounting logs through the SWF standard pipeline",
        &[
            "dialect",
            "raw jobs",
            "converted jobs",
            "skipped lines",
            "violations after cleaning",
            "round-trip identical?",
        ],
    );
    let dialects = Dialect::all();
    let rows = parallel_map(dialects.len(), default_threads(), |i| {
        let dialect = dialects[i];
        let profile = RawLogProfile::canonical(dialect);
        let raw = generate_raw_log(&profile, scale.jobs, 6);
        let conv = convert(
            &raw,
            dialect,
            Some(profile.machine_size),
            &ConvertOptions::default(),
        )
        .expect("conversion succeeds");
        let report = validate(&conv.log);
        let text = psbench_swf::write_string(&conv.log);
        let back = psbench_swf::parse(&text).expect("writer output parses");
        vec![
            dialect.name().to_string(),
            scale.jobs.to_string(),
            conv.log.len().to_string(),
            conv.skipped.to_string(),
            report.violations.len().to_string(),
            (back.jobs == conv.log.jobs).to_string(),
        ]
    });
    for row in rows {
        table.push_row(row);
    }
    table
}

/// E7 — co-allocation (Sections 3.1–3.2): queue-based versus reservation-based
/// simultaneous access to several sites.
pub fn e7_coallocation(scale: Scale) -> Table {
    let mut table = Table::new(
        "E7 — co-allocation across sites: queues versus advance reservations",
        &[
            "mechanism",
            "requests",
            "synchronized fraction",
            "mean start delay [s]",
            "mean wasted node-seconds",
        ],
    );
    let req = CoallocationRequest {
        parts: 3,
        procs: 64,
        duration: 3600.0,
    };
    for mechanism in ["queues", "reservations"] {
        let mut sites = standard_metasystem(4, 7);
        let mut synced = 0usize;
        let mut delay = 0.0;
        let mut wasted = 0.0;
        let mut count = 0usize;
        for i in 0..scale.requests {
            let now = i as f64 * 1800.0;
            let outcome = match mechanism {
                "queues" => Some(coallocate_via_queues(&req, &mut sites, now, 300.0)),
                _ => coallocate_via_reservations(&req, &mut sites, now, 3600.0),
            };
            if let Some(o) = outcome {
                count += 1;
                if o.synchronized {
                    synced += 1;
                }
                delay += o.start - now;
                wasted += o.wasted_node_seconds;
            }
        }
        let denom = count.max(1) as f64;
        table.push_row(vec![
            mechanism.to_string(),
            count.to_string(),
            fmt(synced as f64 / denom),
            fmt(delay / denom),
            fmt(wasted / denom),
        ]);
    }
    table
}

/// E8 — the WARMstones-style "apples-to-apples" table (Section 4.3): every
/// canonical workload crossed with every canonical scheduler.
pub fn e8_warmstones(scale: Scale) -> Table {
    let mut table = Table::new(
        "E8 — canonical suite × canonical schedulers (mean bounded slowdown | utilization)",
        &{
            let mut headers = vec!["workload"];
            headers.extend(canonical_schedulers());
            headers
        },
    );
    let suite = canonical_suite(scale.jobs);
    let scheds = canonical_schedulers();
    let scenarios: Vec<Scenario> = suite
        .iter()
        .flat_map(|def| scheds.iter().map(|sched| scenario_for(*def, sched, false)))
        .collect();
    let runs = run_all_parallel(&scenarios, default_threads());
    for (w, def) in suite.iter().enumerate() {
        let mut row = vec![def.kind.name().to_string()];
        for i in 0..scheds.len() {
            let r = &runs[w * scheds.len() + i].1;
            row.push(format!(
                "{} | {}",
                fmt(r.mean_bounded_slowdown()),
                fmt(r.system().utilization)
            ));
        }
        table.push_row(row);
    }
    table
}

/// E9 — flexible jobs (Sections 1.2, 2.2): moldable jobs under adaptive
/// partitioning versus the same jobs submitted rigidly at their maximum useful size
/// under EASY backfilling.
pub fn e9_flexible(scale: Scale) -> Table {
    let mut table = Table::new(
        "E9 — moldable jobs: adaptive partitioning versus rigid submission",
        &[
            "policy",
            "jobs",
            "mean response [s]",
            "mean bounded slowdown",
            "utilization",
        ],
    );
    // Build a moldable workload from the Downey model: arrivals and total work from
    // the model, speedup profiles attached to every job.
    let model = Downey97::with_machine_size(128);
    let log = model.generate(scale.jobs, 97);
    let mut rng = psbench_workload::model_rng(97);
    let moldable_jobs: Vec<SimJob> = log
        .summaries()
        .filter_map(SimJob::from_swf)
        .map(|mut j| {
            let (_, speedup) = model.sample_application(&mut rng);
            // The SWF runtime was generated at the job's recorded size; recover the
            // sequential work from the recorded allocation so the comparison is fair.
            let seq_work = j.work * {
                use psbench_workload::flexible::SpeedupModel;
                speedup.speedup(j.procs)
            };
            j.work = seq_work;
            j.estimate = seq_work;
            j.moldable(speedup)
        })
        .collect();
    let rigid_jobs: Vec<SimJob> = log.summaries().filter_map(SimJob::from_swf).collect();

    let mut adaptive = by_name("adaptive", 128).unwrap();
    let r_adaptive = Simulation::new(SimConfig::new(128), moldable_jobs).run(adaptive.as_mut());
    let mut easy = by_name("easy", 128).unwrap();
    let r_rigid = Simulation::new(SimConfig::new(128), rigid_jobs).run(easy.as_mut());
    for (name, r) in [
        ("adaptive (moldable)", &r_adaptive),
        ("easy (rigid)", &r_rigid),
    ] {
        table.push_row(vec![
            name.to_string(),
            r.finished.len().to_string(),
            fmt(r.mean_response_time()),
            fmt(r.mean_bounded_slowdown()),
            fmt(r.system().utilization),
        ]);
    }
    table
}

/// E10 — model fidelity (Section 2.1): every rigid-job workload model scored
/// against a reference trace by the KS and EMD distances of its marginal
/// distributions (interarrival, runtime, size, estimate accuracy, diurnal
/// cycle). The reference is a pinned Lublin99 workload standing in for an
/// archive log, so the Lublin99 model itself (at a different seed) should
/// score best — the "relatively representative" claim as a measurement.
pub fn e10_model_fidelity(scale: Scale) -> Table {
    let reference_def = WorkloadDef::new(WorkloadKind::Lublin99, 128, scale.jobs, 424_242);
    let reference = profile_parallel(
        "reference(lublin99)",
        &reference_def.generate(),
        default_threads(),
    );
    let models = psbench_workload::standard_models(128);
    let reports: Vec<FidelityReport> = parallel_map(models.len(), default_threads(), |i| {
        let m = &models[i];
        let profile = profile_parallel(m.name(), &m.generate(scale.jobs, 58), 1);
        FidelityReport::compare(&reference, &profile)
    });
    let mut table = Table::new(
        "E10 — model fidelity against a reference trace (KS per marginal, EMD for runtime, chi2 for the joint size-runtime histogram)",
        &[
            "model",
            "KS interarrival",
            "KS runtime",
            "KS size",
            "KS accuracy",
            "KS diurnal",
            "EMD runtime [s]",
            "chi2 size-runtime",
            "mean KS",
        ],
    );
    for r in &reports {
        let ks = |name: &str| {
            r.marginals
                .iter()
                .find(|m| m.marginal == name)
                .map(|m| m.ks)
                .unwrap_or(1.0)
        };
        let emd_runtime = r
            .marginals
            .iter()
            .find(|m| m.marginal == "runtime")
            .map(|m| m.emd)
            .unwrap_or(0.0);
        table.push_row(vec![
            r.candidate.clone(),
            fmt(ks("interarrival")),
            fmt(ks("runtime")),
            fmt(ks("size")),
            fmt(ks("accuracy")),
            fmt(ks("diurnal")),
            fmt(emd_runtime),
            fmt(r.joint_size_runtime),
            fmt(r.mean_ks()),
        ]);
    }
    table
}

/// Identifiers of all experiments, in EXPERIMENTS.md order.
pub fn experiment_ids() -> &'static [&'static str] {
    &["E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10"]
}

/// Run one experiment by id at the given scale.
pub fn run_experiment(id: &str, scale: Scale) -> Option<Table> {
    match id {
        "E1" => Some(e1_metric_disagreement(scale)),
        "E2" => Some(e2_objective_weights(scale)),
        "E3" => Some(e3_model_comparison(scale)),
        "E4" => Some(e4_feedback(scale)),
        "E5" => Some(e5_outages(scale)),
        "E6" => Some(e6_swf_pipeline(scale)),
        "E7" => Some(e7_coallocation(scale)),
        "E8" => Some(e8_warmstones(scale)),
        "E9" => Some(e9_flexible(scale)),
        "E10" => Some(e10_model_fidelity(scale)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Scale {
        Scale {
            jobs: 120,
            sweep_points: 2,
            requests: 8,
        }
    }

    #[test]
    fn e1_produces_a_row_per_load_point() {
        let t = e1_metric_disagreement(tiny());
        assert_eq!(t.rows.len(), 2);
        assert_eq!(t.headers.len(), 8);
    }

    #[test]
    fn e2_covers_the_weight_range() {
        let t = e2_objective_weights(tiny());
        assert!(t.rows.len() >= 4);
        assert_eq!(t.rows.first().unwrap()[0], fmt(0.0));
        assert_eq!(t.rows.last().unwrap()[0], fmt(1.0));
    }

    #[test]
    fn e3_compares_all_four_models() {
        let t = e3_model_comparison(tiny());
        assert_eq!(t.rows.len(), 4);
        let names: Vec<&str> = t.rows.iter().map(|r| r[0].as_str()).collect();
        assert!(names.contains(&"lublin99"));
    }

    #[test]
    fn e4_reports_open_and_closed_loop() {
        let t = e4_feedback(tiny());
        assert_eq!(t.rows.len(), 2);
        for row in &t.rows {
            let open: f64 = row[1].parse().unwrap();
            let closed: f64 = row[2].parse().unwrap();
            assert!(open > 0.0 && closed > 0.0);
        }
    }

    #[test]
    fn e5_shows_three_configurations() {
        let t = e5_outages(tiny());
        assert_eq!(t.rows.len(), 3);
        assert_eq!(t.rows[0][2], "0"); // no outages -> no kills
    }

    #[test]
    fn e6_converts_every_dialect_cleanly() {
        let t = e6_swf_pipeline(tiny());
        assert_eq!(t.rows.len(), 4);
        for row in &t.rows {
            assert_eq!(row[4], "0", "dialect {} not clean", row[0]);
            assert_eq!(row[5], "true");
        }
    }

    #[test]
    fn e7_reservations_always_synchronize() {
        let t = e7_coallocation(tiny());
        assert_eq!(t.rows.len(), 2);
        let res_row = t.rows.iter().find(|r| r[0] == "reservations").unwrap();
        assert_eq!(res_row[2], fmt(1.0));
        assert_eq!(res_row[4], fmt(0.0));
    }

    #[test]
    fn e9_compares_adaptive_and_rigid() {
        let t = e9_flexible(tiny());
        assert_eq!(t.rows.len(), 2);
    }

    #[test]
    fn e10_ranks_the_reference_model_first() {
        let t = e10_model_fidelity(tiny());
        assert_eq!(t.rows.len(), 4); // the four rigid-job models
        assert_eq!(t.headers.len(), 9);
        let mean_ks = |row: &Vec<String>| row[8].parse::<f64>().unwrap();
        let lublin = t.rows.iter().find(|r| r[0] == "lublin99").unwrap();
        for row in t.rows.iter().filter(|r| r[0] != "lublin99") {
            assert!(
                mean_ks(lublin) <= mean_ks(row),
                "lublin99 ({}) should score no worse than {} ({})",
                lublin[8],
                row[0],
                row[8],
            );
        }
        // The joint size-runtime chi-square column stays in [0, 1].
        for row in &t.rows {
            let joint: f64 = row[7].parse().unwrap();
            assert!((0.0..=1.0).contains(&joint), "{} joint = {joint}", row[0]);
        }
        // KS columns stay in [0, 1]
        for row in &t.rows {
            for col in 1..=5 {
                let v: f64 = row[col].parse().unwrap();
                assert!((0.0..=1.0).contains(&v), "{}[{col}] = {v}", row[0]);
            }
        }
    }

    #[test]
    fn run_experiment_dispatches_every_id() {
        for id in experiment_ids() {
            if *id == "E8" {
                continue; // E8 is the full cross product; exercised in integration tests
            }
            assert!(run_experiment(id, tiny()).is_some(), "experiment {id}");
        }
        assert!(run_experiment("E99", tiny()).is_none());
    }
}
