//! Calendar-vs-reference engine equivalence over the real scheduler zoo.
//!
//! The sim crate's property tests cover randomized micro-workloads with
//! synthetic policies; this test drives the production schedulers (FCFS, the
//! sorted greedy family, EASY and conservative backfilling, gang, adaptive,
//! draining) over Lublin99 model workloads — open and closed loop, with and
//! without outages — and asserts the O(log n) calendar engine reproduces the
//! seed-style reference engine's `SimulationResult` bit for bit.

use psbench_sched::prelude::*;
use psbench_sim::{Scheduler, SimConfig, SimJob, Simulation};
use psbench_workload::feedback::{infer_dependencies, InferenceParams};
use psbench_workload::outagegen::OutageGenerator;
use psbench_workload::{Lublin99, WorkloadModel};

const MACHINE: u32 = 128;

fn schedulers() -> Vec<Box<dyn Scheduler>> {
    vec![
        Box::new(Fcfs),
        Box::new(SortedGreedy::sjf()),
        Box::new(SortedGreedy::greedy_fcfs()),
        Box::new(EasyBackfill::default()),
        Box::new(ConservativeBackfill),
        Box::new(GangScheduler::new(MACHINE, 4, Packing::BestFit)),
        Box::new(AdaptivePartition::default()),
        Box::new(DrainingEasy::new()),
    ]
}

fn assert_equivalent(config: SimConfig, jobs: &[SimJob], label: &str) {
    // Two scheduler instances per policy: they are stateful (gang's matrix,
    // draining's announced outages), so each engine gets a fresh one.
    for (mut a, mut b) in schedulers().into_iter().zip(schedulers()) {
        let calendar = Simulation::new(config.clone(), jobs.to_vec()).run(a.as_mut());
        let reference = Simulation::new_reference(config.clone(), jobs.to_vec()).run(b.as_mut());
        assert_eq!(
            calendar, reference,
            "calendar and reference engines diverged: {} under {}",
            label, calendar.scheduler
        );
        assert!(
            !calendar.finished.is_empty(),
            "{label}: degenerate scenario, nothing finished"
        );
    }
}

#[test]
fn open_loop_equivalence() {
    let log = Lublin99::default().generate(1_200, 42);
    let jobs = SimJob::from_log(&log);
    assert_equivalent(SimConfig::new(MACHINE), &jobs, "open loop");
}

#[test]
fn closed_loop_equivalence() {
    let mut log = Lublin99::default().generate(900, 7);
    infer_dependencies(&mut log, &InferenceParams::default());
    let jobs = SimJob::from_log(&log);
    assert_equivalent(SimConfig::new(MACHINE).closed_loop(), &jobs, "closed loop");
}

#[test]
fn saturated_closed_loop_equivalence() {
    // The overloaded regime the backlog index exists for: submit times
    // compressed 8×, so the machine saturates and the backlog grows deep —
    // batched completion consults and index-driven replans are on the hot
    // path for every policy, and must still match the reference engine bit
    // for bit. Closed loop keeps dependency release in the mix.
    let mut log = Lublin99::default().generate(900, 21);
    for j in &mut log.jobs {
        j.submit_time /= 8;
    }
    infer_dependencies(&mut log, &InferenceParams::default());
    let jobs = SimJob::from_log(&log);
    assert_equivalent(
        SimConfig::new(MACHINE).closed_loop(),
        &jobs,
        "saturated closed loop",
    );
}

#[test]
fn outage_equivalence() {
    let log = Lublin99::default().generate(900, 99);
    let jobs = SimJob::from_log(&log);
    let horizon = jobs.iter().map(|j| j.submit as i64).max().unwrap_or(0) + 86_400;
    let outages = OutageGenerator::for_machine(MACHINE).generate(horizon, 4242);
    assert!(
        !outages.outages.is_empty(),
        "outage generator produced none"
    );
    assert_equivalent(
        SimConfig::new(MACHINE).with_outages(outages),
        &jobs,
        "with outages",
    );
}
