//! Calendar-vs-reference engine equivalence over the real scheduler zoo.
//!
//! The sim crate's property tests cover randomized micro-workloads with
//! synthetic policies; this test drives the production schedulers (FCFS, the
//! sorted greedy family, EASY and conservative backfilling, gang, adaptive,
//! draining) over Lublin99 model workloads — open and closed loop, with and
//! without outages — and asserts the O(log n) calendar engine reproduces the
//! seed-style reference engine's `SimulationResult` bit for bit.

use proptest::prelude::*;
use psbench_sched::prelude::*;
use psbench_sim::{Scheduler, SimConfig, SimJob, Simulation};
use psbench_workload::feedback::{infer_dependencies, InferenceParams};
use psbench_workload::outagegen::OutageGenerator;
use psbench_workload::{Lublin99, WorkloadModel};

const MACHINE: u32 = 128;

fn schedulers() -> Vec<Box<dyn Scheduler>> {
    vec![
        Box::new(Fcfs),
        Box::new(SortedGreedy::sjf()),
        Box::new(SortedGreedy::greedy_fcfs()),
        Box::new(EasyBackfill::default()),
        Box::new(ConservativeBackfill::default()),
        // `ReplanConservative` is the seed-style rebuild-per-react planner —
        // the same workload the zoo has always carried. `ConservativeOracle`
        // is deliberately left out: its rebuild-every-react cost on these
        // archive-depth scenarios is what the calendar exists to avoid, and
        // its equivalence to the calendar is pinned by the dedicated
        // near-tie proptest below and the unit differential suite.
        Box::new(ReplanConservative),
        Box::new(GangScheduler::new(MACHINE, 4, Packing::BestFit)),
        Box::new(AdaptivePartition::default()),
        Box::new(DrainingEasy::new()),
    ]
}

fn assert_equivalent(config: SimConfig, jobs: &[SimJob], label: &str) {
    // Two scheduler instances per policy: they are stateful (gang's matrix,
    // draining's announced outages), so each engine gets a fresh one.
    for (mut a, mut b) in schedulers().into_iter().zip(schedulers()) {
        let calendar = Simulation::new(config.clone(), jobs.to_vec()).run(a.as_mut());
        let reference = Simulation::new_reference(config.clone(), jobs.to_vec()).run(b.as_mut());
        assert_eq!(
            calendar, reference,
            "calendar and reference engines diverged: {} under {}",
            label, calendar.scheduler
        );
        assert!(
            !calendar.finished.is_empty(),
            "{label}: degenerate scenario, nothing finished"
        );
    }
}

#[test]
fn open_loop_equivalence() {
    let log = Lublin99::default().generate(1_200, 42);
    let jobs = SimJob::from_log(&log);
    assert_equivalent(SimConfig::new(MACHINE), &jobs, "open loop");
}

#[test]
fn closed_loop_equivalence() {
    let mut log = Lublin99::default().generate(900, 7);
    infer_dependencies(&mut log, &InferenceParams::default());
    let jobs = SimJob::from_log(&log);
    assert_equivalent(SimConfig::new(MACHINE).closed_loop(), &jobs, "closed loop");
}

#[test]
fn saturated_closed_loop_equivalence() {
    // The overloaded regime the backlog index exists for: submit times
    // compressed 8×, so the machine saturates and the backlog grows deep —
    // batched completion consults and index-driven replans are on the hot
    // path for every policy, and must still match the reference engine bit
    // for bit. Closed loop keeps dependency release in the mix.
    let mut log = Lublin99::default().generate(900, 21);
    for j in &mut log.jobs {
        j.submit_time /= 8;
    }
    infer_dependencies(&mut log, &InferenceParams::default());
    let jobs = SimJob::from_log(&log);
    assert_equivalent(
        SimConfig::new(MACHINE).closed_loop(),
        &jobs,
        "saturated closed loop",
    );
}

#[test]
fn outage_equivalence() {
    let log = Lublin99::default().generate(900, 99);
    let jobs = SimJob::from_log(&log);
    let horizon = jobs.iter().map(|j| j.submit as i64).max().unwrap_or(0) + 86_400;
    let outages = OutageGenerator::for_machine(MACHINE).generate(horizon, 4242);
    assert!(
        !outages.outages.is_empty(),
        "outage generator produced none"
    );
    assert_equivalent(
        SimConfig::new(MACHINE).with_outages(outages),
        &jobs,
        "with outages",
    );
}

/// Randomized workloads whose submit times, runtimes and estimates sit within
/// ~1e-9 of each other — the adversarial regime for the planning layer, where
/// any asymmetric tolerance or non-deterministic tie-break between the
/// incremental calendar and the exhaustive oracle would surface as a
/// different start order. Integer nanoseconds over a handful of base instants
/// guarantee genuine near-ties without ever being exactly equal unless the
/// draw repeats.
fn near_tie_jobs(specs: &[(u8, u8, u8, u8, u8)]) -> Vec<SimJob> {
    specs
        .iter()
        .enumerate()
        .map(|(i, &(base, jitter, run, procs, over))| {
            let submit = base as f64 * 100.0 + jitter as f64 * 1e-9;
            let runtime = 50.0 + run as f64 + (jitter as f64) * 0.5e-9;
            let estimate = runtime + over as f64 * 40.0 + (base as f64) * 1e-9;
            SimJob::rigid(i as u64 + 1, submit, runtime, 1 + (procs as u32 % MACHINE))
                .with_estimate(estimate)
        })
        .collect()
}

/// Run one scheduler over the calendar engine and return its result with the
/// scheduler name erased, so results from the optimized calendar and the
/// exhaustive oracle can be compared bit for bit as whole structs.
fn run_anonymized(
    sched: &mut dyn Scheduler,
    config: &SimConfig,
    jobs: &[SimJob],
) -> psbench_sim::SimulationResult {
    let mut r = Simulation::new(config.clone(), jobs.to_vec()).run(sched);
    r.scheduler = String::new();
    r
}

proptest! {
    /// The tentpole's contract: the persistent-calendar conservative
    /// backfiller and its exhaustive rebuild-every-react oracle produce
    /// bit-identical `SimulationResult`s — every start instant, end instant,
    /// event count and metric — on randomized workloads saturated with
    /// near-tie (~1e-9) timestamps, in both open and closed loop.
    #[test]
    fn calendar_matches_exhaustive_oracle_under_near_ties(
        specs in prop::collection::vec(
            (0u8..4, 0u8..8, 0u8..100, 0u8..255, 0u8..3),
            1..80,
        ),
        closed_loop in 0u8..2,
    ) {
        let jobs = near_tie_jobs(&specs);
        let mut config = SimConfig::new(MACHINE);
        config.closed_loop = closed_loop == 1;
        let fast = run_anonymized(&mut ConservativeBackfill::default(), &config, &jobs);
        let oracle = run_anonymized(&mut ConservativeOracle::default(), &config, &jobs);
        prop_assert_eq!(fast, oracle);
    }
}
