//! Adaptive partitioning for moldable jobs.
//!
//! Flexible applications "can be run on a variety of different machine
//! configurations" (Section 1.2); with a speedup model attached to each job the
//! scheduler chooses the allocation. This policy implements the classic adaptive
//! equipartition family: the target partition size shrinks as the system gets
//! busier, but never exceeds the job's own useful parallelism.

use psbench_sim::{Decision, Scheduler, SchedulerContext, SchedulerEvent};
use psbench_workload::flexible::SpeedupModel;

/// Adaptive / dynamic equipartitioning of moldable jobs.
#[derive(Debug, Clone, Copy)]
pub struct AdaptivePartition {
    /// Smallest allocation the policy will hand out.
    pub min_alloc: u32,
    /// Largest allocation the policy will hand out (0 = whole machine).
    pub max_alloc: u32,
}

impl Default for AdaptivePartition {
    fn default() -> Self {
        AdaptivePartition {
            min_alloc: 1,
            max_alloc: 0,
        }
    }
}

impl AdaptivePartition {
    fn target_allocation(&self, ctx: &SchedulerContext<'_>) -> u32 {
        // Equipartition target: machine size divided by the number of jobs competing
        // for it (running + queued), at least `min_alloc`.
        let competitors = (ctx.running.len() + ctx.queue.len()).max(1) as u32;
        let machine = ctx.cluster.available_procs().max(1);
        let target = (machine / competitors).max(self.min_alloc.max(1));
        if self.max_alloc > 0 {
            target.min(self.max_alloc)
        } else {
            target
        }
    }
}

impl Scheduler for AdaptivePartition {
    fn name(&self) -> &str {
        "adaptive"
    }

    fn react(&mut self, ctx: &SchedulerContext<'_>, _event: SchedulerEvent) -> Vec<Decision> {
        let target = self.target_allocation(ctx);
        let mut free = ctx.free_capacity();
        let mut out = Vec::new();
        // Already candidate-bounded without the backlog index: moldable jobs
        // always fit (their allocation is clamped to the free capacity) and a
        // rigid job that does not fit stops the walk FCFS-style, so the cost
        // per react is O(decisions), not O(backlog). The full-job iterator is
        // required here — allocations depend on the speedup model, which the
        // compact scheduling keys do not carry.
        for q in ctx.queue.iter() {
            if free < 1.0 - 1e-9 {
                break;
            }
            let alloc = match &q.job.speedup {
                Some(sp) => {
                    // Never give a moldable job more processors than it can use: past
                    // the knee of the speedup curve extra processors are wasted.
                    let useful = {
                        let mut best = 1u32;
                        let mut best_eff = 0.0;
                        for n in 1..=target.max(1) {
                            let eff = sp.speedup(n);
                            if eff > best_eff + 1e-9 {
                                best_eff = eff;
                                best = n;
                            }
                        }
                        best
                    };
                    useful.min(free.floor() as u32).max(1)
                }
                // Rigid jobs keep their requested size.
                None => q.job.procs,
            };
            if (alloc as f64) <= free + 1e-9 {
                free -= alloc as f64;
                out.push(Decision::start_on(q.job.id, alloc));
            } else if q.job.speedup.is_none() {
                // Rigid head job that does not fit: behave like FCFS and wait.
                break;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue_order::Fcfs;
    use psbench_sim::{SimConfig, SimJob, Simulation};
    use psbench_workload::flexible::DowneySpeedup;

    fn moldable(id: u64, submit: f64, seq_work: f64, a: f64) -> SimJob {
        SimJob::rigid(id, submit, seq_work, 1).moldable(DowneySpeedup { a, sigma: 0.0 })
    }

    #[test]
    fn lone_moldable_job_gets_a_large_partition() {
        let job = moldable(1, 0.0, 6400.0, 64.0);
        let result =
            Simulation::new(SimConfig::new(64), vec![job]).run(&mut AdaptivePartition::default());
        let f = &result.finished[0];
        assert_eq!(f.procs, 64);
        assert!((f.end - 100.0).abs() < 1e-6);
    }

    #[test]
    fn partitions_shrink_under_load() {
        // Four identical moldable jobs arriving together on a 64-proc machine: the
        // first finds an idle machine and takes it all, but the jobs queued behind it
        // are started side by side in shrunken partitions once it completes.
        let jobs: Vec<SimJob> = (0..4).map(|i| moldable(i + 1, 0.0, 1600.0, 64.0)).collect();
        let result =
            Simulation::new(SimConfig::new(64), jobs).run(&mut AdaptivePartition::default());
        assert_eq!(result.finished.len(), 4);
        let small: Vec<&psbench_sim::FinishedJob> =
            result.finished.iter().filter(|f| f.procs <= 32).collect();
        assert_eq!(small.len(), 3, "later jobs must get shrunken partitions");
        for f in &small {
            assert!(f.procs >= 8, "allocation {} too small", f.procs);
        }
        // The three shrunken jobs run concurrently, not serialized.
        let starts: Vec<f64> = small.iter().map(|f| f.start).collect();
        assert!(starts.windows(2).all(|w| (w[0] - w[1]).abs() < 1e-6));
    }

    #[test]
    fn allocation_capped_by_useful_parallelism() {
        // A job with average parallelism 8 gets at most 8 processors even on an idle
        // 64-processor machine.
        let job = moldable(1, 0.0, 800.0, 8.0);
        let result =
            Simulation::new(SimConfig::new(64), vec![job]).run(&mut AdaptivePartition::default());
        assert_eq!(result.finished[0].procs, 8);
        assert!((result.finished[0].end - 100.0).abs() < 1e-6);
    }

    #[test]
    fn adaptive_beats_rigid_fcfs_on_moldable_burst() {
        // Eight moldable jobs (average parallelism 16) arrive at once. Submitting
        // them rigidly at 64 processors wastes three quarters of the machine and
        // serializes the burst; adaptive partitioning caps each at its useful
        // parallelism and runs four side by side.
        let moldable_jobs: Vec<SimJob> =
            (0..8).map(|i| moldable(i + 1, 0.0, 1600.0, 16.0)).collect();
        let rigid_jobs: Vec<SimJob> = (0..8)
            .map(|i| SimJob::rigid(i + 1, 0.0, 100.0, 64)) // 1600/16 = 100 s, padded to 64 procs
            .collect();
        let adaptive = Simulation::new(SimConfig::new(64), moldable_jobs)
            .run(&mut AdaptivePartition::default());
        let rigid = Simulation::new(SimConfig::new(64), rigid_jobs).run(&mut Fcfs);
        assert_eq!(adaptive.finished.len(), 8);
        assert_eq!(rigid.finished.len(), 8);
        assert!(
            adaptive.mean_response_time() < rigid.mean_response_time(),
            "adaptive {} vs rigid {}",
            adaptive.mean_response_time(),
            rigid.mean_response_time()
        );
    }

    #[test]
    fn rigid_jobs_pass_through_unchanged() {
        let jobs = vec![
            SimJob::rigid(1, 0.0, 100.0, 16),
            SimJob::rigid(2, 0.0, 100.0, 16),
        ];
        let result =
            Simulation::new(SimConfig::new(64), jobs).run(&mut AdaptivePartition::default());
        assert!(result.finished.iter().all(|f| f.procs == 16));
        assert_eq!(result.rejected_decisions, 0);
    }

    #[test]
    fn min_and_max_alloc_respected() {
        let mut policy = AdaptivePartition {
            min_alloc: 4,
            max_alloc: 16,
        };
        let jobs: Vec<SimJob> = (0..2).map(|i| moldable(i + 1, 0.0, 1600.0, 64.0)).collect();
        let result = Simulation::new(SimConfig::new(64), jobs).run(&mut policy);
        for f in &result.finished {
            assert!(f.procs >= 4 && f.procs <= 16, "allocation {}", f.procs);
        }
    }
}
