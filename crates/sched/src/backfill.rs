//! Backfilling schedulers: EASY (aggressive) and conservative.
//!
//! Backfilling is the workhorse of production batch schedulers and the main
//! consumer of the user runtime estimates the SWF standard carries (field 9). EASY
//! makes a reservation only for the queue head and backfills any job that does not
//! delay it; conservative backfilling gives every queued job a reservation and
//! backfills only into the resulting profile.

use crate::calendar::{eps_eq, eps_ge, eps_lt};
use psbench_sim::{Decision, Scheduler, SchedulerContext, SchedulerEvent};

/// A step function of free processors over time, used to plan future starts.
#[derive(Debug, Clone)]
pub(crate) struct Profile {
    /// (time, free_procs) breakpoints, sorted by time; free_procs holds from this
    /// breakpoint to the next. The last entry extends to infinity.
    steps: Vec<(f64, f64)>,
}

impl Profile {
    /// Build the profile of free capacity from the running jobs' estimated
    /// completion times. [`SchedulerContext::completion_profile`] arrives sorted
    /// and already carries the proc·share each completion releases, so this is a
    /// single O(running) pass — no re-sort, no per-completion lookup.
    pub(crate) fn from_running(ctx: &SchedulerContext<'_>) -> Self {
        let mut steps = vec![(ctx.now, ctx.free_capacity())];
        let mut free = ctx.free_capacity();
        for (_, end, procs) in ctx.completion_profile() {
            free += procs;
            steps.push((end.max(ctx.now), free));
        }
        Profile { steps }
    }

    /// Free capacity at time `t`.
    pub(crate) fn free_at(&self, t: f64) -> f64 {
        let mut free = self.steps.first().map(|s| s.1).unwrap_or(0.0);
        for &(time, f) in &self.steps {
            if time <= t + 1e-9 {
                free = f;
            } else {
                break;
            }
        }
        free
    }

    /// The most free capacity reachable at a start time the
    /// [`Profile::earliest_start`] search would still treat as "now" — `from`
    /// itself plus any breakpoint within the start/lookup tolerances. This is
    /// the sound reachability bound behind conservative backfilling's early
    /// exit: if even this is below one processor, no job can start now.
    pub(crate) fn free_near(&self, from: f64) -> f64 {
        let mut best = self.free_at(from);
        // Steps are time-sorted: only the (from, from + 2e-9] window matters,
        // so stop at the first breakpoint past it.
        for &(t, f) in &self.steps {
            if t > from + 2e-9 {
                break;
            }
            if t > from {
                best = best.max(f);
            }
        }
        best
    }

    /// Earliest time ≥ `from` at which `procs` processors are continuously free for
    /// `duration` seconds.
    ///
    /// The candidate starts are `from` and every breakpoint after it, in
    /// order; a candidate is feasible when the capacity at it covers `procs`
    /// and no breakpoint inside its window dips below. All three cursors
    /// (candidate, capacity-at-candidate, next too-low breakpoint) move
    /// monotonically with the candidate, so the search is a single O(steps)
    /// pass — the seed implementation re-scanned the whole profile per
    /// candidate, which made a deep-backlog conservative replan cubic.
    pub(crate) fn earliest_start(&self, from: f64, procs: f64, duration: f64) -> f64 {
        // Breakpoints whose capacity cannot host `procs`, ascending.
        let bad: Vec<f64> = self
            .steps
            .iter()
            .filter(|s| s.1 + 1e-9 < procs)
            .map(|s| s.0)
            .collect();
        let mut bi = 0usize; // first bad breakpoint past the candidate
        let mut fi = 0usize; // last step at or before candidate (+ tolerance)
        let mut si = 0usize; // next step to draw a candidate from
        while si < self.steps.len() && self.steps[si].0 <= from {
            si += 1;
        }
        let mut candidate = Some(from);
        while let Some(start) = candidate {
            while bi < bad.len() && bad[bi] <= start {
                bi += 1;
            }
            while fi + 1 < self.steps.len() && self.steps[fi + 1].0 <= start + 1e-9 {
                fi += 1;
            }
            // Mirrors `free_at`: the first step's capacity applies even to
            // instants before it (it is the "now" anchor).
            let free = self.steps.get(fi).map(|s| s.1).unwrap_or(0.0);
            if free + 1e-9 >= procs && !(bi < bad.len() && bad[bi] < start + duration) {
                return start;
            }
            candidate = (si < self.steps.len()).then(|| {
                let t = self.steps[si].0;
                si += 1;
                t
            });
        }
        // The last breakpoint always has the whole (available) machine free.
        self.steps.last().map(|s| s.0).unwrap_or(from).max(from)
    }

    /// Reserve `procs` processors for `[start, start+duration)`, reducing the free
    /// capacity in that window (inserting breakpoints as needed). O(steps):
    /// the two new breakpoints are spliced at their sorted positions instead
    /// of re-sorting the whole profile.
    ///
    /// Breakpoint dedup and window membership go through the same
    /// epsilon-compare helpers: a step is inside the window exactly when it is
    /// at-or-after `start` and strictly-before `end` under [`eps_eq`]'s notion
    /// of "same instant". The seed used `s.0 + 1e-9 >= start` for membership
    /// but `|s.0 - start| < 1e-9` for dedup, so a pre-existing breakpoint at
    /// exactly `start - 1e-9` — distinct by the dedup test — still had its
    /// capacity reduced for the sliver `[start - 1e-9, start)` the reservation
    /// does not cover.
    pub(crate) fn reserve(&mut self, start: f64, duration: f64, procs: f64) {
        let end = start + duration;
        let free_at_start = self.free_at(start);
        let free_at_end = self.free_at(end);
        if !self.steps.iter().any(|s| eps_eq(s.0, start)) {
            let pos = self.steps.partition_point(|s| s.0 <= start);
            self.steps.insert(pos, (start, free_at_start));
        }
        if !self.steps.iter().any(|s| eps_eq(s.0, end)) {
            let pos = self.steps.partition_point(|s| s.0 <= end);
            self.steps.insert(pos, (end, free_at_end));
        }
        for s in &mut self.steps {
            if eps_ge(s.0, start) && eps_lt(s.0, end) {
                s.1 -= procs;
            }
        }
    }
}

/// EASY (aggressive) backfilling: jobs start in arrival order; when the head does
/// not fit it gets a reservation at the earliest time enough processors will be
/// free (based on user estimates), and later jobs may be backfilled if they fit now
/// and do not delay that reservation.
///
/// # Incremental arrivals
///
/// A full plan used to walk the whole backlog, which is O(queue) per react and
/// turns quadratic on saturated archive-scale traces. Two mechanisms remove
/// that: between two consecutive *arrival* consults nothing a full replan
/// depends on can change — free capacity is untouched, the blocked head is
/// still blocked, the running jobs' estimated completion times are fixed
/// *absolute* instants (`started_at + estimate`), and every job that failed
/// the backfill test before fails it again (the shadow test only gets harder
/// as `now` advances, and the extra budget never grows) — so after a full plan
/// the scheduler caches the blocked head and the `(shadow, extra)` pair, and a
/// pure-arrival react tests **only the arriving job** in O(1). Any other event
/// — a completion (single or batched), an outage, a kill, a backfill actually
/// starting, or a running job outliving its estimate (which makes its
/// estimated end drift) — falls back to a full replan; and the full replan's
/// backfill phase consults the queue's **backlog index**
/// ([`psbench_sim::JobQueue::candidates_fitting_either`]) so it examines only
/// the jobs that can possibly fit the free capacity or the extra budget,
/// instead of the entire backlog.
#[derive(Debug, Clone, Copy, Default)]
pub struct EasyBackfill {
    cache: Option<EasyCache>,
}

/// The state a pure-arrival react needs from the last full plan.
#[derive(Debug, Clone, Copy)]
struct EasyCache {
    /// Id of the blocked queue head the shadow was computed for.
    head_id: u64,
    /// Width of the blocked head, processors.
    head_procs: u32,
    /// Absolute time at which enough capacity frees for the head (by estimates).
    shadow: f64,
    /// Processors still free at the shadow time after the head starts.
    extra: f64,
    /// Earliest estimated completion over the jobs running at plan time
    /// (including the plan's own starts). Once the clock passes it, some job
    /// has outlived its estimate — its estimated end starts drifting with the
    /// clock, moving the shadow — so the cache is stale.
    min_est_end: f64,
}

impl EasyBackfill {
    /// Full three-phase plan; refreshes the cache. Phase 1 consumes the
    /// fitting prefix of the arrival-ordered key array, phase 2 computes the
    /// head's shadow from the completion profile, and phase 3 backfills from
    /// the backlog index: only jobs narrow enough for the free capacity (with
    /// an estimate inside the shadow budget) or for the extra processors are
    /// ever examined, so the plan's cost scales with the viable candidates,
    /// not the backlog depth.
    fn full_plan(&mut self, ctx: &SchedulerContext<'_>) -> Vec<Decision> {
        self.cache = None;
        let mut queue = ctx.queue.iter_keys();
        let mut out = Vec::new();
        let mut free = ctx.free_capacity();
        // Local copy of (estimated end, procs) for the shadow computation, updated
        // as we decide to start jobs in this very call. The context's profile is
        // sorted once per react and carries the released proc·share directly.
        let mut completions: Vec<(f64, f64)> = ctx
            .completion_profile()
            .into_iter()
            .map(|(_, end, procs)| (end, procs))
            .collect();

        // Phase 1: start jobs from the head while they fit.
        let mut head = None;
        for q in queue.by_ref() {
            if (q.procs as f64) <= free + 1e-9 {
                free -= q.procs as f64;
                completions.push((ctx.now + q.estimate.max(1.0), q.procs as f64));
                out.push(Decision::start(q.id));
            } else {
                head = Some(q);
                break;
            }
        }
        let Some(head) = head else {
            return out;
        };

        // Phase 2: reservation (shadow time) for the head job that did not fit.
        completions.sort_by(|a, b| a.0.total_cmp(&b.0));
        let mut avail = free;
        let mut shadow = f64::INFINITY;
        let mut extra = 0.0;
        for &(end, procs) in &completions {
            avail += procs;
            if avail + 1e-9 >= head.procs as f64 {
                shadow = end;
                extra = avail - head.procs as f64;
                break;
            }
        }

        // Phase 3: backfill later jobs that fit now and do not delay the head:
        // either they finish (by estimate) before the shadow time, or they use
        // only the processors that will still be free when the head starts.
        //
        // This phase is the hot loop of a saturated simulation. The backlog
        // index enumerates, in arrival order, exactly the jobs behind the head
        // that satisfy one of the two tests under the *initial* budgets; each
        // candidate is then re-tested against the current (shrinking) budgets
        // with the same expressions the exhaustive scan used, so the decision
        // sequence is identical — the index only removes the jobs that could
        // never pass. The capacity comparisons are hoisted to integer floors:
        // `procs` is integral, so `procs ≤ x + 1e-9  ⟺  procs ≤ ⌊x + 1e-9⌋`
        // exactly, and the floors only change when a backfill actually starts.
        let mut free_floor = (free + 1e-9).floor();
        let mut extra_floor = (extra + 1e-9).floor();
        let shadow_budget = shadow + 1e-9 - ctx.now; // estimate budget
                                                     // Phase-3 starts are not folded into `completions`, but their
                                                     // estimated ends still bound the cache's overdue horizon.
        let mut min_backfill_end = f64::INFINITY;
        if free_floor >= 1.0 {
            let head_pos = ctx.queue.get(head.id).map(|h| (h.queued_at, h.job.id));
            let wide = free_floor.min(u32::MAX as f64) as u32;
            let narrow = extra_floor.min(free_floor).clamp(0.0, u32::MAX as f64) as u32;
            let mut scan = ctx
                .queue
                .backfill_scan(wide, shadow_budget, narrow, head_pos);
            while let Some(q) = scan.next() {
                // Every job needs ≥ 1 processor (a `SimJob` invariant), so once
                // less than one is free nothing further can be backfilled.
                if free_floor < 1.0 {
                    break;
                }
                let procs = q.procs as f64;
                if procs > free_floor {
                    continue;
                }
                let fits_in_extra = procs <= extra_floor;
                let ends_before_shadow = q.estimate <= shadow_budget;
                if ends_before_shadow || fits_in_extra {
                    free -= procs;
                    free_floor = (free + 1e-9).floor();
                    if !ends_before_shadow {
                        extra -= procs;
                        extra_floor = (extra + 1e-9).floor();
                    }
                    min_backfill_end = min_backfill_end.min(ctx.now + q.estimate.max(1.0));
                    out.push(Decision::start(q.id));
                    // Tighten the scan to the new budgets: bucket streams that
                    // can no longer produce a start are dropped, so the rest
                    // of their backlog entries are never touched.
                    scan.shrink(
                        free_floor.clamp(0.0, u32::MAX as f64) as u32,
                        extra_floor.min(free_floor).clamp(0.0, u32::MAX as f64) as u32,
                    );
                }
            }
        }
        self.cache = Some(EasyCache {
            head_id: head.id,
            head_procs: head.procs,
            shadow,
            extra,
            // `completions` (sorted by end time) holds every running job plus
            // phase 1's starts; phase 3's starts are folded in separately.
            min_est_end: completions
                .first()
                .map_or(f64::INFINITY, |c| c.0)
                .min(min_backfill_end),
        });
        out
    }

    /// Is the cached plan still exactly what a full replan would produce?
    /// True only if the head is still blocked at the queue front and no
    /// running job has outlived its estimate (which would move its estimated
    /// completion, and with it the shadow). O(1): the overdue test compares
    /// the clock against the cached earliest estimated completion.
    fn cache_valid(&self, ctx: &SchedulerContext<'_>) -> Option<EasyCache> {
        let cache = self.cache?;
        let head_key = ctx.queue.iter_keys().next()?;
        if head_key.id != cache.head_id
            || (cache.head_procs as f64) <= ctx.free_capacity() + 1e-9
            || ctx.now > cache.min_est_end
        {
            return None;
        }
        Some(cache)
    }

    /// Drop the cached plan. Wrapping policies that veto this scheduler's
    /// proposed starts (e.g. [`crate::drain::DrainingEasy`]) must call this
    /// whenever they drop a decision: the cache assumes every proposed start
    /// was applied, so a veto leaves it describing a state that never
    /// happened.
    pub fn invalidate(&mut self) {
        self.cache = None;
    }
}

impl Scheduler for EasyBackfill {
    fn name(&self) -> &str {
        "easy"
    }

    fn react(&mut self, ctx: &SchedulerContext<'_>, event: SchedulerEvent) -> Vec<Decision> {
        if let SchedulerEvent::JobArrived { job_id } = event {
            if let Some(cache) = self.cache_valid(ctx) {
                // O(1) path: only the arriving job can have become startable.
                let Some(q) = ctx.queue.get(job_id) else {
                    return Vec::new();
                };
                let procs = q.job.procs as f64;
                let free = ctx.free_capacity();
                if procs > free + 1e-9 {
                    return Vec::new();
                }
                // Bit-identical to full_plan's phase-3 test: same expression
                // shape (`est <= shadow + 1e-9 - now`), same shadow value.
                let ends_before_shadow = q.job.estimate <= cache.shadow + 1e-9 - ctx.now;
                let fits_in_extra = procs <= cache.extra + 1e-9;
                if ends_before_shadow || fits_in_extra {
                    // Starting a job adds a completion the cached shadow did
                    // not see; the next arrival must replan.
                    self.cache = None;
                    return vec![Decision::start(job_id)];
                }
                return Vec::new();
            }
        }
        self.full_plan(ctx)
    }
}

/// Replan-per-react conservative backfilling: every queued job gets a
/// reservation in a profile of future free capacity rebuilt from scratch on
/// each react; a job starts now only if its reservation is now, so no job is
/// ever delayed by a later arrival (under exact estimates).
///
/// This is the pre-calendar formulation. Because the whole backlog is
/// re-planned against a fresh profile, an early completion implicitly moves
/// Θ(backlog) reservations per react, which keeps the policy super-linear on
/// saturated traces no matter how fast a single replan is — the persistent
/// [`crate::calendar::ConservativeBackfill`] replaces it as the default
/// `conservative` policy. It stays in the zoo (as `conservative-replan`)
/// because its fully-stateless replan is a useful semantic contrast and a
/// guard for the planning-profile machinery EASY shares.
///
/// The profile is rebuilt per react and only `Start` decisions leave it, which
/// yields two exact early exits for the saturated regime. Before building
/// anything, the **backlog index** is consulted: a job can only start now if
/// it fits the capacity free around `now`, so if no queued job is that narrow
/// the whole react is a no-op — reservations of the unexamined jobs cannot
/// change an empty output. And during the replan, once less than one
/// processor remains startable around `now`, the rest of the backlog can only
/// add reservations, so the scan stops. Both exits leave the emitted decision
/// sequence identical to the exhaustive replan.
#[derive(Debug, Clone, Copy, Default)]
pub struct ReplanConservative;

impl Scheduler for ReplanConservative {
    fn name(&self) -> &str {
        "conservative-replan"
    }

    fn react(&mut self, ctx: &SchedulerContext<'_>, _event: SchedulerEvent) -> Vec<Decision> {
        let mut profile = Profile::from_running(ctx);
        // Index consult: the widest job that could possibly start now. Under
        // saturation this is < 1 processor (or matches no queued job) and the
        // react costs O(running), not O(backlog).
        let startable = (profile.free_near(ctx.now) + 1e-9).floor();
        if startable < 1.0 {
            return Vec::new();
        }
        let cands: Vec<_> = ctx
            .queue
            .candidates_fitting(startable.min(u32::MAX as f64) as u32, f64::INFINITY)
            .collect();
        if cands.is_empty() {
            return Vec::new();
        }
        // Narrowest candidate at or after each candidate position: once even
        // that cannot fit the capacity still startable around `now` (which
        // only shrinks as reservations land), no remaining job can start —
        // the rest of the backlog would only add reservations, which cannot
        // affect this react's output.
        let mut suffix_min = vec![u32::MAX; cands.len() + 1];
        for i in (0..cands.len()).rev() {
            suffix_min[i] = cands[i].procs.min(suffix_min[i + 1]);
        }
        let mut ci = 0usize;
        let mut out = Vec::new();
        for q in ctx.queue.iter_keys() {
            let startable_now = (profile.free_near(ctx.now) + 1e-9).floor();
            if suffix_min[ci] as f64 > startable_now {
                break;
            }
            let procs = q.procs as f64;
            let duration = q.estimate.max(1.0);
            let start = profile.earliest_start(ctx.now, procs, duration);
            profile.reserve(start, duration, procs);
            if start <= ctx.now + 1e-9 {
                out.push(Decision::start(q.id));
            }
            if ci < cands.len() && cands[ci].id == q.id {
                ci += 1;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psbench_sim::{SimConfig, SimJob, Simulation};

    fn jobs(specs: &[(u64, f64, f64, u32)]) -> Vec<SimJob> {
        specs
            .iter()
            .map(|&(id, submit, rt, procs)| SimJob::rigid(id, submit, rt, procs))
            .collect()
    }

    #[test]
    fn profile_earliest_start_and_reserve() {
        let steps = Profile {
            steps: vec![(0.0, 16.0), (100.0, 48.0), (200.0, 64.0)],
        };
        assert_eq!(steps.free_at(0.0), 16.0);
        assert_eq!(steps.free_at(150.0), 48.0);
        assert_eq!(steps.free_at(500.0), 64.0);
        // 32 procs for 50s: earliest at t=100
        assert_eq!(steps.earliest_start(0.0, 32.0, 50.0), 100.0);
        // 64 procs: only from 200
        assert_eq!(steps.earliest_start(0.0, 64.0, 10.0), 200.0);
        // 8 procs fits immediately
        assert_eq!(steps.earliest_start(0.0, 8.0, 1000.0), 0.0);
        let mut p = steps.clone();
        p.reserve(100.0, 50.0, 40.0);
        assert_eq!(p.free_at(120.0), 8.0);
        assert_eq!(p.free_at(160.0), 48.0);
    }

    #[test]
    fn reserve_merges_breakpoints_within_half_tolerance() {
        // A pre-existing breakpoint 0.5e-9 *before* the reservation start is
        // "the same instant" by the shared epsilon compare: no duplicate
        // breakpoint is inserted and the step is decremented, symmetrically
        // for a breakpoint 0.5e-9 *after* the start.
        for offset in [-0.5e-9, 0.5e-9] {
            let mut p = Profile {
                steps: vec![(0.0, 64.0), (100.0 + offset, 64.0)],
            };
            p.reserve(100.0, 50.0, 16.0);
            assert_eq!(
                p.steps.len(),
                3,
                "offset {offset:e}: no duplicate breakpoint"
            );
            assert_eq!(p.steps[1].1, 48.0, "offset {offset:e}: step decremented");
            assert_eq!(p.free_at(120.0), 48.0);
            assert_eq!(p.free_at(200.0), 64.0);
        }
    }

    #[test]
    fn reserve_does_not_bleed_into_distinct_earlier_breakpoint() {
        // A breakpoint exactly 1e-9 before the start is a *distinct* instant
        // by the dedup test, so a breakpoint is inserted at the start — and
        // the decrement loop must not touch the earlier step. The seed's
        // asymmetric membership test (`s.0 + 1e-9 >= start`) reduced it too,
        // understating capacity on the sliver before the reservation.
        // At start = 0 the offset 1e-9 is exactly representable, so the
        // boundary is hit deterministically: |before - start| == 1e-9 fails
        // the `< 1e-9` dedup, while the seed's membership test
        // (`before + 1e-9 >= start`) still matched.
        let before = -1e-9;
        let mut p = Profile {
            steps: vec![(before, 64.0)],
        };
        p.reserve(0.0, 50.0, 16.0);
        let pre = p.steps.iter().find(|s| s.0 == before).unwrap();
        assert_eq!(
            pre.1, 64.0,
            "distinct earlier breakpoint keeps its capacity"
        );
        let at = p.steps.iter().find(|s| s.0 == 0.0).unwrap();
        assert_eq!(at.1, 48.0);
        // Symmetric at the end boundary: a breakpoint 0.5e-9 before the end is
        // "the end" and must not be decremented.
        let mut q = Profile {
            steps: vec![(0.0, 64.0), (150.0 - 0.5e-9, 64.0)],
        };
        q.reserve(100.0, 50.0, 16.0);
        let tail = q.steps.iter().find(|s| s.0 == 150.0 - 0.5e-9).unwrap();
        assert_eq!(tail.1, 64.0, "near-end breakpoint is outside the window");
    }

    #[test]
    fn easy_backfills_short_narrow_job() {
        // Head job (64) blocked behind a 48-proc job; a 10s/8-proc job can backfill
        // because it finishes before the head's reservation.
        let js = jobs(&[(1, 0.0, 100.0, 48), (2, 1.0, 200.0, 64), (3, 2.0, 10.0, 8)]);
        let result =
            Simulation::new(SimConfig::new(64), js.clone()).run(&mut EasyBackfill::default());
        let j3 = result.finished.iter().find(|f| f.id == 3).unwrap();
        assert_eq!(j3.start, 2.0, "EASY should backfill job 3 immediately");
        // And the head job is not delayed: it starts when job 1 ends.
        let j2 = result.finished.iter().find(|f| f.id == 2).unwrap();
        assert_eq!(j2.start, 100.0);
        // Strict FCFS would have made job 3 wait.
        let fcfs = Simulation::new(SimConfig::new(64), js).run(&mut crate::queue_order::Fcfs);
        let j3_fcfs = fcfs.finished.iter().find(|f| f.id == 3).unwrap();
        assert!(j3_fcfs.start > 2.0);
    }

    #[test]
    fn easy_does_not_backfill_job_that_would_delay_head() {
        // A long 8-proc job would end after the head's shadow time and would eat the
        // processors the head needs -> must not be backfilled.
        let js = jobs(&[
            (1, 0.0, 100.0, 60),
            (2, 1.0, 200.0, 64),
            (3, 2.0, 1000.0, 8),
        ]);
        let result = Simulation::new(SimConfig::new(64), js).run(&mut EasyBackfill::default());
        let j2 = result.finished.iter().find(|f| f.id == 2).unwrap();
        assert_eq!(j2.start, 100.0, "head must start at its reservation");
        let j3 = result.finished.iter().find(|f| f.id == 3).unwrap();
        assert!(
            j3.start >= 100.0,
            "backfill that delays the head must be refused"
        );
    }

    #[test]
    fn easy_backfills_into_extra_processors() {
        // Head needs 32 of 64; 16 procs remain free even when the head starts, so a
        // long 16-proc job may backfill into that "extra" space.
        let js = jobs(&[
            (1, 0.0, 100.0, 48),
            (2, 1.0, 200.0, 32),
            (3, 2.0, 5000.0, 16),
        ]);
        let result = Simulation::new(SimConfig::new(64), js).run(&mut EasyBackfill::default());
        let j3 = result.finished.iter().find(|f| f.id == 3).unwrap();
        assert_eq!(j3.start, 2.0);
        let j2 = result.finished.iter().find(|f| f.id == 2).unwrap();
        assert_eq!(j2.start, 100.0);
    }

    #[test]
    fn conservative_never_delays_earlier_job() {
        // With conservative backfilling, job 3 (arrived later) must not push job 2
        // beyond the start it would get from the profile at its arrival.
        let js = jobs(&[
            (1, 0.0, 100.0, 60),
            (2, 1.0, 200.0, 64),
            (3, 2.0, 1000.0, 4),
        ]);
        let result = Simulation::new(SimConfig::new(64), js).run(&mut ReplanConservative);
        let j2 = result.finished.iter().find(|f| f.id == 2).unwrap();
        assert_eq!(j2.start, 100.0);
    }

    #[test]
    fn conservative_backfills_when_harmless() {
        let js = jobs(&[(1, 0.0, 100.0, 48), (2, 1.0, 200.0, 64), (3, 2.0, 10.0, 8)]);
        let result = Simulation::new(SimConfig::new(64), js).run(&mut ReplanConservative);
        let j3 = result.finished.iter().find(|f| f.id == 3).unwrap();
        assert_eq!(j3.start, 2.0);
    }

    #[test]
    fn backfilling_reduces_response_time_versus_fcfs_on_a_real_workload() {
        use psbench_workload::{Lublin99, WorkloadModel};
        let log = Lublin99::default().generate(800, 1234);
        let js = SimJob::from_log(&log);
        let fcfs =
            Simulation::new(SimConfig::new(128), js.clone()).run(&mut crate::queue_order::Fcfs);
        let easy =
            Simulation::new(SimConfig::new(128), js.clone()).run(&mut EasyBackfill::default());
        let cons = Simulation::new(SimConfig::new(128), js).run(&mut ReplanConservative);
        assert_eq!(fcfs.finished.len(), 800);
        assert_eq!(easy.finished.len(), 800);
        assert_eq!(cons.finished.len(), 800);
        // The headline result of two decades of JSSPP papers: backfilling beats FCFS.
        assert!(
            easy.mean_response_time() <= fcfs.mean_response_time(),
            "easy {} vs fcfs {}",
            easy.mean_response_time(),
            fcfs.mean_response_time()
        );
        assert!(cons.mean_response_time() <= fcfs.mean_response_time());
    }

    #[test]
    fn all_jobs_complete_and_no_rejections() {
        let js: Vec<SimJob> = (0..200)
            .map(|i| {
                SimJob::rigid(
                    i + 1,
                    (i * 15) as f64,
                    60.0 + (i % 9) as f64 * 150.0,
                    1 + (i % 50) as u32,
                )
                .with_estimate(60.0 + (i % 9) as f64 * 300.0)
            })
            .collect();
        for sched in [
            &mut EasyBackfill::default() as &mut dyn Scheduler,
            &mut ReplanConservative,
        ] {
            let result = Simulation::new(SimConfig::new(64), js.clone()).run(sched);
            assert_eq!(result.finished.len(), 200, "{}", sched.name());
            assert_eq!(result.rejected_decisions, 0, "{}", sched.name());
        }
    }
}
