//! Backfilling schedulers: EASY (aggressive) and conservative.
//!
//! Backfilling is the workhorse of production batch schedulers and the main
//! consumer of the user runtime estimates the SWF standard carries (field 9). EASY
//! makes a reservation only for the queue head and backfills any job that does not
//! delay it; conservative backfilling gives every queued job a reservation and
//! backfills only into the resulting profile.

use psbench_sim::{Decision, Scheduler, SchedulerContext, SchedulerEvent};

/// A step function of free processors over time, used to plan future starts.
#[derive(Debug, Clone)]
pub(crate) struct Profile {
    /// (time, free_procs) breakpoints, sorted by time; free_procs holds from this
    /// breakpoint to the next. The last entry extends to infinity.
    steps: Vec<(f64, f64)>,
}

impl Profile {
    /// Build the profile of free capacity from the running jobs' estimated
    /// completion times. [`SchedulerContext::completion_profile`] arrives sorted
    /// and already carries the proc·share each completion releases, so this is a
    /// single O(running) pass — no re-sort, no per-completion lookup.
    pub(crate) fn from_running(ctx: &SchedulerContext<'_>) -> Self {
        let mut steps = vec![(ctx.now, ctx.free_capacity())];
        let mut free = ctx.free_capacity();
        for (_, end, procs) in ctx.completion_profile() {
            free += procs;
            steps.push((end.max(ctx.now), free));
        }
        Profile { steps }
    }

    /// Free capacity at time `t`.
    pub(crate) fn free_at(&self, t: f64) -> f64 {
        let mut free = self.steps.first().map(|s| s.1).unwrap_or(0.0);
        for &(time, f) in &self.steps {
            if time <= t + 1e-9 {
                free = f;
            } else {
                break;
            }
        }
        free
    }

    /// Earliest time ≥ `from` at which `procs` processors are continuously free for
    /// `duration` seconds.
    pub(crate) fn earliest_start(&self, from: f64, procs: f64, duration: f64) -> f64 {
        let mut candidates: Vec<f64> = vec![from];
        candidates.extend(self.steps.iter().map(|s| s.0).filter(|&t| t > from));
        candidates.sort_by(|a, b| a.total_cmp(b));
        'outer: for &start in &candidates {
            // Check every breakpoint within [start, start+duration).
            if self.free_at(start) + 1e-9 < procs {
                continue;
            }
            for &(t, f) in &self.steps {
                if t > start && t < start + duration && f + 1e-9 < procs {
                    continue 'outer;
                }
            }
            return start;
        }
        // The last breakpoint always has the whole (available) machine free.
        self.steps.last().map(|s| s.0).unwrap_or(from).max(from)
    }

    /// Reserve `procs` processors for `[start, start+duration)`, reducing the free
    /// capacity in that window (inserting breakpoints as needed).
    pub(crate) fn reserve(&mut self, start: f64, duration: f64, procs: f64) {
        let end = start + duration;
        let free_at_start = self.free_at(start);
        let free_at_end = self.free_at(end);
        if !self.steps.iter().any(|s| (s.0 - start).abs() < 1e-9) {
            self.steps.push((start, free_at_start));
        }
        if !self.steps.iter().any(|s| (s.0 - end).abs() < 1e-9) {
            self.steps.push((end, free_at_end));
        }
        self.steps.sort_by(|a, b| a.0.total_cmp(&b.0));
        for s in &mut self.steps {
            if s.0 + 1e-9 >= start && s.0 < end - 1e-9 {
                s.1 -= procs;
            }
        }
    }
}

/// EASY (aggressive) backfilling: jobs start in arrival order; when the head does
/// not fit it gets a reservation at the earliest time enough processors will be
/// free (based on user estimates), and later jobs may be backfilled if they fit now
/// and do not delay that reservation.
///
/// # Incremental arrivals
///
/// A full plan walks the whole backlog, which is O(queue) per react and turns
/// quadratic on saturated archive-scale traces. But between two consecutive
/// *arrival* consults nothing a full replan depends on can change: free
/// capacity is untouched, the blocked head is still blocked, the running jobs'
/// estimated completion times are fixed *absolute* instants
/// (`started_at + estimate`), and every job that failed the backfill test
/// before fails it again (the shadow test only gets harder as `now` advances,
/// and the extra budget never grows). So after a full plan the scheduler
/// caches the blocked head and the `(shadow, extra)` pair, and a pure-arrival
/// react tests **only the arriving job** in O(1). Any other event — a
/// completion, an outage, a kill, a backfill actually starting, or a running
/// job outliving its estimate (which makes its estimated end drift) — falls
/// back to a full replan that refreshes the cache.
#[derive(Debug, Clone, Copy, Default)]
pub struct EasyBackfill {
    cache: Option<EasyCache>,
    /// `(now, free, queue len, running len)` of the last full plan that emitted
    /// no decision. When several jobs complete at the same instant the engine
    /// consults once per job, but the first consult already saw all the freed
    /// capacity; if the state is bit-identical to that planless plan, the
    /// plan's (deterministic) result is too, so the scan is skipped.
    idle_snapshot: Option<(f64, f64, usize, usize)>,
}

/// The state a pure-arrival react needs from the last full plan.
#[derive(Debug, Clone, Copy)]
struct EasyCache {
    /// Id of the blocked queue head the shadow was computed for.
    head_id: u64,
    /// Width of the blocked head, processors.
    head_procs: u32,
    /// Absolute time at which enough capacity frees for the head (by estimates).
    shadow: f64,
    /// Processors still free at the shadow time after the head starts.
    extra: f64,
    /// Earliest estimated completion over the jobs running at plan time
    /// (including the plan's own starts). Once the clock passes it, some job
    /// has outlived its estimate — its estimated end starts drifting with the
    /// clock, moving the shadow — so the cache is stale.
    min_est_end: f64,
}

impl EasyBackfill {
    /// Full three-phase plan over the whole backlog; refreshes the cache.
    fn full_plan(&mut self, ctx: &SchedulerContext<'_>) -> Vec<Decision> {
        self.idle_snapshot = None;
        // One streaming pass over the queue's compact scheduling keys (already
        // in arrival order): phase 1 consumes the fitting prefix, phase 2
        // computes the head's shadow from the completion profile, and phase 3
        // continues the same iteration over the remaining jobs. No sort, no
        // queue materialization, no full-job memory traffic.
        self.cache = None;
        let mut queue = ctx.queue.iter_keys();
        let mut out = Vec::new();
        let mut free = ctx.free_capacity();
        // Local copy of (estimated end, procs) for the shadow computation, updated
        // as we decide to start jobs in this very call. The context's profile is
        // sorted once per react and carries the released proc·share directly.
        let mut completions: Vec<(f64, f64)> = ctx
            .completion_profile()
            .into_iter()
            .map(|(_, end, procs)| (end, procs))
            .collect();

        // Phase 1: start jobs from the head while they fit.
        let mut head = None;
        for q in queue.by_ref() {
            if (q.procs as f64) <= free + 1e-9 {
                free -= q.procs as f64;
                completions.push((ctx.now + q.estimate.max(1.0), q.procs as f64));
                out.push(Decision::start(q.id));
            } else {
                head = Some(q);
                break;
            }
        }
        let Some(head) = head else {
            return out;
        };

        // Phase 2: reservation (shadow time) for the head job that did not fit.
        completions.sort_by(|a, b| a.0.total_cmp(&b.0));
        let mut avail = free;
        let mut shadow = f64::INFINITY;
        let mut extra = 0.0;
        for &(end, procs) in &completions {
            avail += procs;
            if avail + 1e-9 >= head.procs as f64 {
                shadow = end;
                extra = avail - head.procs as f64;
                break;
            }
        }

        // Phase 3: backfill later jobs that fit now and do not delay the head:
        // either they finish (by estimate) before the shadow time, or they use
        // only the processors that will still be free when the head starts.
        //
        // This scan is the hot loop of a saturated simulation, so the capacity
        // comparisons are hoisted to integer floors: `procs` is integral, so
        // `procs ≤ x + 1e-9  ⟺  procs ≤ ⌊x + 1e-9⌋` exactly, and the floors
        // only change when a backfill actually starts.
        let mut free_floor = (free + 1e-9).floor();
        let mut extra_floor = (extra + 1e-9).floor();
        let shadow_budget = shadow + 1e-9 - ctx.now; // estimate budget
                                                     // Phase-3 starts are not folded into `completions`, but their
                                                     // estimated ends still bound the cache's overdue horizon.
        let mut min_backfill_end = f64::INFINITY;
        for q in queue {
            // Every job needs ≥ 1 processor (a `SimJob` invariant), so once less
            // than one is free nothing further down the queue can be backfilled.
            if free_floor < 1.0 {
                break;
            }
            let procs = q.procs as f64;
            if procs > free_floor {
                continue;
            }
            let fits_in_extra = procs <= extra_floor;
            let ends_before_shadow = q.estimate <= shadow_budget;
            if ends_before_shadow || fits_in_extra {
                free -= procs;
                free_floor = (free + 1e-9).floor();
                if !ends_before_shadow {
                    extra -= procs;
                    extra_floor = (extra + 1e-9).floor();
                }
                min_backfill_end = min_backfill_end.min(ctx.now + q.estimate.max(1.0));
                out.push(Decision::start(q.id));
            }
        }
        self.cache = Some(EasyCache {
            head_id: head.id,
            head_procs: head.procs,
            shadow,
            extra,
            // `completions` (sorted by end time) holds every running job plus
            // phase 1's starts; phase 3's starts are folded in separately.
            min_est_end: completions
                .first()
                .map_or(f64::INFINITY, |c| c.0)
                .min(min_backfill_end),
        });
        if out.is_empty() {
            self.idle_snapshot = Some((
                ctx.now,
                ctx.free_capacity(),
                ctx.queue.len(),
                ctx.running.len(),
            ));
        }
        out
    }

    /// Is the cached plan still exactly what a full replan would produce?
    /// True only if the head is still blocked at the queue front and no
    /// running job has outlived its estimate (which would move its estimated
    /// completion, and with it the shadow). O(1): the overdue test compares
    /// the clock against the cached earliest estimated completion.
    fn cache_valid(&self, ctx: &SchedulerContext<'_>) -> Option<EasyCache> {
        let cache = self.cache?;
        let head_key = ctx.queue.iter_keys().next()?;
        if head_key.id != cache.head_id
            || (cache.head_procs as f64) <= ctx.free_capacity() + 1e-9
            || ctx.now > cache.min_est_end
        {
            return None;
        }
        Some(cache)
    }

    /// Drop the cached plan. Wrapping policies that veto this scheduler's
    /// proposed starts (e.g. [`crate::drain::DrainingEasy`]) must call this
    /// whenever they drop a decision: the cache assumes every proposed start
    /// was applied, so a veto leaves it describing a state that never
    /// happened.
    pub fn invalidate(&mut self) {
        self.cache = None;
        self.idle_snapshot = None;
    }
}

impl Scheduler for EasyBackfill {
    fn name(&self) -> &str {
        "easy"
    }

    fn react(&mut self, ctx: &SchedulerContext<'_>, event: SchedulerEvent) -> Vec<Decision> {
        if matches!(event, SchedulerEvent::JobCompleted { .. })
            && self.idle_snapshot
                == Some((
                    ctx.now,
                    ctx.free_capacity(),
                    ctx.queue.len(),
                    ctx.running.len(),
                ))
        {
            // Same instant, bit-identical state, and the plan for it already
            // came back empty: replanning would produce the same nothing.
            return Vec::new();
        }
        if let SchedulerEvent::JobArrived { job_id } = event {
            if let Some(cache) = self.cache_valid(ctx) {
                // O(1) path: only the arriving job can have become startable.
                let Some(q) = ctx.queue.get(job_id) else {
                    return Vec::new();
                };
                let procs = q.job.procs as f64;
                let free = ctx.free_capacity();
                if procs > free + 1e-9 {
                    return Vec::new();
                }
                // Bit-identical to full_plan's phase-3 test: same expression
                // shape (`est <= shadow + 1e-9 - now`), same shadow value.
                let ends_before_shadow = q.job.estimate <= cache.shadow + 1e-9 - ctx.now;
                let fits_in_extra = procs <= cache.extra + 1e-9;
                if ends_before_shadow || fits_in_extra {
                    // Starting a job adds a completion the cached shadow did
                    // not see; the next arrival must replan.
                    self.cache = None;
                    return vec![Decision::start(job_id)];
                }
                return Vec::new();
            }
        }
        self.full_plan(ctx)
    }
}

/// Conservative backfilling: every queued job gets a reservation in a profile of
/// future free capacity; a job starts now only if its reservation is now, so no job
/// is ever delayed by a later arrival (under exact estimates).
#[derive(Debug, Clone, Copy, Default)]
pub struct ConservativeBackfill;

impl Scheduler for ConservativeBackfill {
    fn name(&self) -> &str {
        "conservative"
    }

    fn react(&mut self, ctx: &SchedulerContext<'_>, _event: SchedulerEvent) -> Vec<Decision> {
        let mut profile = Profile::from_running(ctx);
        let mut out = Vec::new();
        for q in ctx.queue.iter_keys() {
            let procs = q.procs as f64;
            let duration = q.estimate.max(1.0);
            let start = profile.earliest_start(ctx.now, procs, duration);
            profile.reserve(start, duration, procs);
            if start <= ctx.now + 1e-9 {
                out.push(Decision::start(q.id));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psbench_sim::{SimConfig, SimJob, Simulation};

    fn jobs(specs: &[(u64, f64, f64, u32)]) -> Vec<SimJob> {
        specs
            .iter()
            .map(|&(id, submit, rt, procs)| SimJob::rigid(id, submit, rt, procs))
            .collect()
    }

    #[test]
    fn profile_earliest_start_and_reserve() {
        let steps = Profile {
            steps: vec![(0.0, 16.0), (100.0, 48.0), (200.0, 64.0)],
        };
        assert_eq!(steps.free_at(0.0), 16.0);
        assert_eq!(steps.free_at(150.0), 48.0);
        assert_eq!(steps.free_at(500.0), 64.0);
        // 32 procs for 50s: earliest at t=100
        assert_eq!(steps.earliest_start(0.0, 32.0, 50.0), 100.0);
        // 64 procs: only from 200
        assert_eq!(steps.earliest_start(0.0, 64.0, 10.0), 200.0);
        // 8 procs fits immediately
        assert_eq!(steps.earliest_start(0.0, 8.0, 1000.0), 0.0);
        let mut p = steps.clone();
        p.reserve(100.0, 50.0, 40.0);
        assert_eq!(p.free_at(120.0), 8.0);
        assert_eq!(p.free_at(160.0), 48.0);
    }

    #[test]
    fn easy_backfills_short_narrow_job() {
        // Head job (64) blocked behind a 48-proc job; a 10s/8-proc job can backfill
        // because it finishes before the head's reservation.
        let js = jobs(&[(1, 0.0, 100.0, 48), (2, 1.0, 200.0, 64), (3, 2.0, 10.0, 8)]);
        let result =
            Simulation::new(SimConfig::new(64), js.clone()).run(&mut EasyBackfill::default());
        let j3 = result.finished.iter().find(|f| f.id == 3).unwrap();
        assert_eq!(j3.start, 2.0, "EASY should backfill job 3 immediately");
        // And the head job is not delayed: it starts when job 1 ends.
        let j2 = result.finished.iter().find(|f| f.id == 2).unwrap();
        assert_eq!(j2.start, 100.0);
        // Strict FCFS would have made job 3 wait.
        let fcfs = Simulation::new(SimConfig::new(64), js).run(&mut crate::queue_order::Fcfs);
        let j3_fcfs = fcfs.finished.iter().find(|f| f.id == 3).unwrap();
        assert!(j3_fcfs.start > 2.0);
    }

    #[test]
    fn easy_does_not_backfill_job_that_would_delay_head() {
        // A long 8-proc job would end after the head's shadow time and would eat the
        // processors the head needs -> must not be backfilled.
        let js = jobs(&[
            (1, 0.0, 100.0, 60),
            (2, 1.0, 200.0, 64),
            (3, 2.0, 1000.0, 8),
        ]);
        let result = Simulation::new(SimConfig::new(64), js).run(&mut EasyBackfill::default());
        let j2 = result.finished.iter().find(|f| f.id == 2).unwrap();
        assert_eq!(j2.start, 100.0, "head must start at its reservation");
        let j3 = result.finished.iter().find(|f| f.id == 3).unwrap();
        assert!(
            j3.start >= 100.0,
            "backfill that delays the head must be refused"
        );
    }

    #[test]
    fn easy_backfills_into_extra_processors() {
        // Head needs 32 of 64; 16 procs remain free even when the head starts, so a
        // long 16-proc job may backfill into that "extra" space.
        let js = jobs(&[
            (1, 0.0, 100.0, 48),
            (2, 1.0, 200.0, 32),
            (3, 2.0, 5000.0, 16),
        ]);
        let result = Simulation::new(SimConfig::new(64), js).run(&mut EasyBackfill::default());
        let j3 = result.finished.iter().find(|f| f.id == 3).unwrap();
        assert_eq!(j3.start, 2.0);
        let j2 = result.finished.iter().find(|f| f.id == 2).unwrap();
        assert_eq!(j2.start, 100.0);
    }

    #[test]
    fn conservative_never_delays_earlier_job() {
        // With conservative backfilling, job 3 (arrived later) must not push job 2
        // beyond the start it would get from the profile at its arrival.
        let js = jobs(&[
            (1, 0.0, 100.0, 60),
            (2, 1.0, 200.0, 64),
            (3, 2.0, 1000.0, 4),
        ]);
        let result = Simulation::new(SimConfig::new(64), js).run(&mut ConservativeBackfill);
        let j2 = result.finished.iter().find(|f| f.id == 2).unwrap();
        assert_eq!(j2.start, 100.0);
    }

    #[test]
    fn conservative_backfills_when_harmless() {
        let js = jobs(&[(1, 0.0, 100.0, 48), (2, 1.0, 200.0, 64), (3, 2.0, 10.0, 8)]);
        let result = Simulation::new(SimConfig::new(64), js).run(&mut ConservativeBackfill);
        let j3 = result.finished.iter().find(|f| f.id == 3).unwrap();
        assert_eq!(j3.start, 2.0);
    }

    #[test]
    fn backfilling_reduces_response_time_versus_fcfs_on_a_real_workload() {
        use psbench_workload::{Lublin99, WorkloadModel};
        let log = Lublin99::default().generate(800, 1234);
        let js = SimJob::from_log(&log);
        let fcfs =
            Simulation::new(SimConfig::new(128), js.clone()).run(&mut crate::queue_order::Fcfs);
        let easy =
            Simulation::new(SimConfig::new(128), js.clone()).run(&mut EasyBackfill::default());
        let cons = Simulation::new(SimConfig::new(128), js).run(&mut ConservativeBackfill);
        assert_eq!(fcfs.finished.len(), 800);
        assert_eq!(easy.finished.len(), 800);
        assert_eq!(cons.finished.len(), 800);
        // The headline result of two decades of JSSPP papers: backfilling beats FCFS.
        assert!(
            easy.mean_response_time() <= fcfs.mean_response_time(),
            "easy {} vs fcfs {}",
            easy.mean_response_time(),
            fcfs.mean_response_time()
        );
        assert!(cons.mean_response_time() <= fcfs.mean_response_time());
    }

    #[test]
    fn all_jobs_complete_and_no_rejections() {
        let js: Vec<SimJob> = (0..200)
            .map(|i| {
                SimJob::rigid(
                    i + 1,
                    (i * 15) as f64,
                    60.0 + (i % 9) as f64 * 150.0,
                    1 + (i % 50) as u32,
                )
                .with_estimate(60.0 + (i % 9) as f64 * 300.0)
            })
            .collect();
        for sched in [
            &mut EasyBackfill::default() as &mut dyn Scheduler,
            &mut ConservativeBackfill,
        ] {
            let result = Simulation::new(SimConfig::new(64), js.clone()).run(sched);
            assert_eq!(result.finished.len(), 200, "{}", sched.name());
            assert_eq!(result.rejected_decisions, 0, "{}", sched.name());
        }
    }
}
