//! # psbench-sched — the scheduler zoo
//!
//! Scheduling policies for the psbench simulator, covering the families the paper's
//! evaluation methodology is meant to compare:
//!
//! * [`queue_order`] — FCFS and sorted greedy variants (SJF, LJF, widest, narrowest).
//! * [`backfill`] — EASY (aggressive) and conservative backfilling, driven by the
//!   user estimates carried in SWF field 9.
//! * [`gang`] — Ousterhout-matrix gang scheduling (time slicing with coscheduling).
//! * [`adaptive`] — adaptive equipartitioning for moldable (flexible) jobs.
//! * [`drain`] — outage- and reservation-aware EASY (drains before announced
//!   outages, schedules around advance reservations).

#![warn(missing_docs)]

pub mod adaptive;
pub mod backfill;
pub mod drain;
pub mod gang;
pub mod queue_order;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use crate::adaptive::AdaptivePartition;
    pub use crate::backfill::{ConservativeBackfill, EasyBackfill};
    pub use crate::drain::DrainingEasy;
    pub use crate::gang::{GangScheduler, Packing};
    pub use crate::queue_order::{Fcfs, Order, SortedGreedy};
}

pub use prelude::*;

use psbench_sim::Scheduler;

/// The standard scheduler line-up used by the benchmark suite and the WARMstones-
/// style scenario table (experiment E8), instantiated for a machine of the given
/// size.
pub fn standard_schedulers(machine_size: u32) -> Vec<Box<dyn Scheduler>> {
    vec![
        Box::new(Fcfs),
        Box::new(SortedGreedy::sjf()),
        Box::new(SortedGreedy::greedy_fcfs()),
        Box::new(EasyBackfill),
        Box::new(ConservativeBackfill),
        Box::new(GangScheduler::new(machine_size, 4, Packing::FirstFit)),
    ]
}

/// Construct a scheduler by its registry name (the names reported by
/// [`Scheduler::name`]); `None` for unknown names.
pub fn by_name(name: &str, machine_size: u32) -> Option<Box<dyn Scheduler>> {
    match name {
        "fcfs" => Some(Box::new(Fcfs)),
        "sjf" => Some(Box::new(SortedGreedy::sjf())),
        "ljf" => Some(Box::new(SortedGreedy::ljf())),
        "widest-first" => Some(Box::new(SortedGreedy::widest())),
        "narrowest-first" => Some(Box::new(SortedGreedy::narrowest())),
        "greedy-fcfs" => Some(Box::new(SortedGreedy::greedy_fcfs())),
        "easy" => Some(Box::new(EasyBackfill)),
        "conservative" => Some(Box::new(ConservativeBackfill)),
        "gang" => Some(Box::new(GangScheduler::new(
            machine_size,
            4,
            Packing::FirstFit,
        ))),
        "adaptive" => Some(Box::new(AdaptivePartition::default())),
        "draining-easy" => Some(Box::new(DrainingEasy::new())),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psbench_sim::{SimConfig, SimJob, Simulation};

    #[test]
    fn standard_schedulers_all_run() {
        let jobs: Vec<SimJob> = (0..100)
            .map(|i| {
                SimJob::rigid(
                    i + 1,
                    (i * 30) as f64,
                    100.0 + (i % 3) as f64 * 300.0,
                    1 + (i % 32) as u32,
                )
            })
            .collect();
        let mut scheds = standard_schedulers(64);
        assert_eq!(scheds.len(), 6);
        for s in scheds.iter_mut() {
            let result = Simulation::new(SimConfig::new(64), jobs.clone()).run(s.as_mut());
            assert_eq!(result.finished.len(), 100, "{}", s.name());
        }
    }

    #[test]
    fn by_name_round_trips_every_standard_name() {
        for name in [
            "fcfs",
            "sjf",
            "ljf",
            "widest-first",
            "narrowest-first",
            "greedy-fcfs",
            "easy",
            "conservative",
            "gang",
            "adaptive",
            "draining-easy",
        ] {
            let s = by_name(name, 128).unwrap_or_else(|| panic!("missing {name}"));
            assert_eq!(s.name(), name);
        }
        assert!(by_name("not-a-scheduler", 128).is_none());
    }
}
