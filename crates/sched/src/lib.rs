//! # psbench-sched — the scheduler zoo
//!
//! Scheduling policies for the psbench simulator, covering the families the paper's
//! evaluation methodology is meant to compare:
//!
//! * [`queue_order`] — FCFS and sorted greedy variants (SJF, LJF, widest, narrowest).
//! * [`backfill`] — EASY (aggressive) backfilling and the replan-per-react
//!   conservative variant, driven by the user estimates carried in SWF field 9.
//! * [`calendar`] — conservative backfilling on a persistent cross-react
//!   reservation calendar (the default `conservative` policy), plus the
//!   exhaustive oracle it is verified against.
//! * [`gang`] — Ousterhout-matrix gang scheduling (time slicing with coscheduling).
//! * [`adaptive`] — adaptive equipartitioning for moldable (flexible) jobs.
//! * [`drain`] — outage- and reservation-aware EASY (drains before announced
//!   outages, schedules around advance reservations).
//! * [`probe`] — predicted-start queries against a cloned engine (the `whatif`
//!   surface of `psbench serve`).

#![warn(missing_docs)]

/// Version stamp of the scheduler zoo's decision semantics.
///
/// Folded into every memoized-result key of the artifact store
/// (`psbench-store`): bump it whenever any registered policy's decisions (or
/// the engine contract they rely on) change, so cached `SimulationResult`s
/// from the old semantics stop being addressable and are reclaimed by
/// `store gc` instead of silently serving stale numbers.
pub const SCHED_VERSION: u32 = 1;

pub mod adaptive;
pub mod backfill;
pub mod calendar;
pub mod drain;
pub mod gang;
pub mod probe;
pub mod queue_order;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use crate::adaptive::AdaptivePartition;
    pub use crate::backfill::{EasyBackfill, ReplanConservative};
    pub use crate::calendar::{ConservativeBackfill, ConservativeOracle};
    pub use crate::drain::DrainingEasy;
    pub use crate::gang::{GangScheduler, Packing};
    pub use crate::probe::{probe_start, Prediction, ProbeError};
    pub use crate::queue_order::{Fcfs, Order, SortedGreedy};
    pub use crate::{by_name, scheduler_names, standard_schedulers, UnknownScheduler};
}

pub use prelude::*;

use psbench_sim::Scheduler;

/// The standard scheduler line-up used by the benchmark suite and the WARMstones-
/// style scenario table (experiment E8), instantiated for a machine of the given
/// size.
pub fn standard_schedulers(machine_size: u32) -> Vec<Box<dyn Scheduler>> {
    vec![
        Box::new(Fcfs),
        Box::new(SortedGreedy::sjf()),
        Box::new(SortedGreedy::greedy_fcfs()),
        Box::new(EasyBackfill::default()),
        Box::new(ConservativeBackfill::default()),
        Box::new(GangScheduler::new(machine_size, 4, Packing::FirstFit)),
    ]
}

/// Constructor of one registered scheduler, from a machine size.
type SchedulerCtor = fn(u32) -> Box<dyn Scheduler>;

/// The scheduler registry: every constructible policy, by name, in canonical
/// order. [`by_name`] and [`scheduler_names`] both derive from this single
/// table, so a policy added here automatically appears in CLI help and error
/// messages.
const REGISTRY: &[(&str, SchedulerCtor)] = &[
    ("fcfs", |_| Box::new(Fcfs)),
    ("sjf", |_| Box::new(SortedGreedy::sjf())),
    ("ljf", |_| Box::new(SortedGreedy::ljf())),
    ("widest-first", |_| Box::new(SortedGreedy::widest())),
    ("narrowest-first", |_| Box::new(SortedGreedy::narrowest())),
    ("greedy-fcfs", |_| Box::new(SortedGreedy::greedy_fcfs())),
    ("easy", |_| Box::new(EasyBackfill::default())),
    (
        "conservative",
        |_| Box::new(ConservativeBackfill::default()),
    ),
    ("conservative-replan", |_| Box::new(ReplanConservative)),
    ("gang", |machine_size| {
        Box::new(GangScheduler::new(machine_size, 4, Packing::FirstFit))
    }),
    ("adaptive", |_| Box::new(AdaptivePartition::default())),
    ("draining-easy", |_| Box::new(DrainingEasy::new())),
];

/// Registry names of every scheduler [`by_name`] can construct, in canonical
/// order. This is the single list surfaced by CLI help and error messages.
pub fn scheduler_names() -> Vec<&'static str> {
    REGISTRY.iter().map(|(name, _)| *name).collect()
}

/// The structured error returned by [`by_name`] for an unrecognized registry
/// name. Its [`std::fmt::Display`] output lists every valid name, so callers
/// can surface an actionable message without consulting the registry
/// themselves.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownScheduler {
    /// The name that did not resolve.
    pub name: String,
}

impl std::fmt::Display for UnknownScheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown scheduler {:?}; valid schedulers: {}",
            self.name,
            scheduler_names().join(", ")
        )
    }
}

impl std::error::Error for UnknownScheduler {}

/// Construct a scheduler by its registry name (the names reported by
/// [`Scheduler::name`] and listed by [`scheduler_names`]).
pub fn by_name(name: &str, machine_size: u32) -> Result<Box<dyn Scheduler>, UnknownScheduler> {
    REGISTRY
        .iter()
        .find(|(n, _)| *n == name)
        .map(|(_, build)| build(machine_size))
        .ok_or_else(|| UnknownScheduler {
            name: name.to_string(),
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use psbench_sim::{SimConfig, SimJob, Simulation};

    #[test]
    fn standard_schedulers_all_run() {
        let jobs: Vec<SimJob> = (0..100)
            .map(|i| {
                SimJob::rigid(
                    i + 1,
                    (i * 30) as f64,
                    100.0 + (i % 3) as f64 * 300.0,
                    1 + (i % 32) as u32,
                )
            })
            .collect();
        let mut scheds = standard_schedulers(64);
        assert_eq!(scheds.len(), 6);
        for s in scheds.iter_mut() {
            let result = Simulation::new(SimConfig::new(64), jobs.clone()).run(s.as_mut());
            assert_eq!(result.finished.len(), 100, "{}", s.name());
        }
    }

    #[test]
    fn by_name_round_trips_every_registered_name() {
        for name in scheduler_names() {
            let s = by_name(name, 128).unwrap_or_else(|e| panic!("{e}"));
            assert_eq!(s.name(), name);
        }
    }

    #[test]
    fn standard_lineup_is_a_subset_of_the_registry() {
        // Every policy in the benchmark line-up must be reachable by name, so
        // the registry (and thus CLI help) can never lag behind the line-up.
        let names = scheduler_names();
        for s in standard_schedulers(64) {
            assert!(
                names.iter().any(|n| *n == s.name()),
                "{} missing from registry",
                s.name()
            );
        }
    }

    #[test]
    fn by_name_error_lists_every_valid_name() {
        let err = match by_name("not-a-scheduler", 128) {
            Err(e) => e,
            Ok(s) => panic!("unexpectedly resolved {}", s.name()),
        };
        assert_eq!(err.name, "not-a-scheduler");
        let msg = err.to_string();
        assert!(msg.contains("not-a-scheduler"));
        for name in scheduler_names() {
            assert!(msg.contains(name), "error should list {name}");
        }
    }
}
