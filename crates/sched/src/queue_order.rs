//! Simple queue-ordering policies: FCFS and its sorted variants.
//!
//! These are the baselines every backfilling study compares against. FCFS is
//! strict: it never starts a job ahead of the queue head, which exposes the loss of
//! capacity that motivates backfilling. The sorted variants (SJF, LJF, widest,
//! narrowest) greedily start any job that fits, in the chosen order.

use psbench_sim::{Decision, Scheduler, SchedulerContext, SchedulerEvent};
use serde::{Deserialize, Serialize};

/// Strict first-come first-served: start jobs from the head of the queue until one
/// does not fit, then wait.
#[derive(Debug, Clone, Copy, Default)]
pub struct Fcfs;

impl Scheduler for Fcfs {
    fn name(&self) -> &str {
        "fcfs"
    }

    fn react(&mut self, ctx: &SchedulerContext<'_>, _event: SchedulerEvent) -> Vec<Decision> {
        // The queue view is already in `(queued_at, id)` order, so strict FCFS
        // is a prefix walk that stops at the first job that does not fit —
        // sublinear per react no matter how deep the backlog is.
        let mut free = ctx.free_capacity();
        let mut out = Vec::new();
        for q in ctx.queue.iter_keys() {
            if (q.procs as f64) <= free + 1e-9 {
                free -= q.procs as f64;
                out.push(Decision::start(q.id));
            } else {
                break;
            }
        }
        out
    }
}

/// The order in which [`SortedGreedy`] considers queued jobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Order {
    /// Shortest (estimated) job first.
    ShortestFirst,
    /// Longest (estimated) job first.
    LongestFirst,
    /// Narrowest job (fewest processors) first.
    NarrowestFirst,
    /// Widest job (most processors) first.
    WidestFirst,
    /// Arrival order (greedy FCFS: skips jobs that do not fit).
    ArrivalOrder,
}

/// A greedy policy: sort the queue by the chosen key and start every job that fits.
#[derive(Debug, Clone, Copy)]
pub struct SortedGreedy {
    /// The ordering applied to the queue before the greedy pass.
    pub order: Order,
}

impl SortedGreedy {
    /// Shortest-job-first (by user estimate).
    pub fn sjf() -> Self {
        SortedGreedy {
            order: Order::ShortestFirst,
        }
    }
    /// Longest-job-first.
    pub fn ljf() -> Self {
        SortedGreedy {
            order: Order::LongestFirst,
        }
    }
    /// Widest-first (biggest processor request first).
    pub fn widest() -> Self {
        SortedGreedy {
            order: Order::WidestFirst,
        }
    }
    /// Narrowest-first.
    pub fn narrowest() -> Self {
        SortedGreedy {
            order: Order::NarrowestFirst,
        }
    }
    /// Greedy first-fit in arrival order.
    pub fn greedy_fcfs() -> Self {
        SortedGreedy {
            order: Order::ArrivalOrder,
        }
    }
}

impl Scheduler for SortedGreedy {
    fn name(&self) -> &str {
        match self.order {
            Order::ShortestFirst => "sjf",
            Order::LongestFirst => "ljf",
            Order::NarrowestFirst => "narrowest-first",
            Order::WidestFirst => "widest-first",
            Order::ArrivalOrder => "greedy-fcfs",
        }
    }

    fn react(&mut self, ctx: &SchedulerContext<'_>, _event: SchedulerEvent) -> Vec<Decision> {
        // Free capacity only shrinks during the greedy pass, so no job wider
        // than the free capacity at react time can start whatever the
        // ordering: consult the backlog index for exactly the fitting
        // candidates instead of materializing (and sorting) the whole backlog.
        let mut free = ctx.free_capacity();
        let free_floor = (free + 1e-9).floor();
        if free_floor < 1.0 {
            return Vec::new();
        }
        let wide = free_floor.min(u32::MAX as f64) as u32;
        if self.order == Order::ArrivalOrder {
            // Arrival order needs no sort, so stream the index lazily and
            // tighten the width bound as starts consume capacity — the pass
            // touches only the candidates it can still start.
            let mut out = Vec::new();
            let mut scan = ctx.queue.backfill_scan(wide, f64::INFINITY, 0, None);
            while let Some(q) = scan.next() {
                if free < 1.0 - 1e-9 {
                    break;
                }
                if (q.procs as f64) <= free + 1e-9 {
                    free -= q.procs as f64;
                    out.push(Decision::start(q.id));
                    scan.shrink((free + 1e-9).floor().max(0.0) as u32, 0);
                }
            }
            return out;
        }
        let mut queue: Vec<_> = ctx.queue.candidates_fitting(wide, f64::INFINITY).collect();
        match self.order {
            Order::ShortestFirst => {
                queue.sort_by(|a, b| a.estimate.total_cmp(&b.estimate).then(a.id.cmp(&b.id)))
            }
            Order::LongestFirst => {
                queue.sort_by(|a, b| b.estimate.total_cmp(&a.estimate).then(a.id.cmp(&b.id)))
            }
            Order::NarrowestFirst => {
                queue.sort_by(|a, b| a.procs.cmp(&b.procs).then(a.id.cmp(&b.id)))
            }
            Order::WidestFirst => queue.sort_by(|a, b| b.procs.cmp(&a.procs).then(a.id.cmp(&b.id))),
            Order::ArrivalOrder => {}
        }
        let mut free = ctx.free_capacity();
        let mut out = Vec::new();
        for q in queue {
            // procs ≥ 1 is a SimJob invariant: below one free processor nothing
            // else can start, whatever the ordering.
            if free < 1.0 - 1e-9 {
                break;
            }
            if (q.procs as f64) <= free + 1e-9 {
                free -= q.procs as f64;
                out.push(Decision::start(q.id));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psbench_sim::{SimConfig, SimJob, Simulation};

    fn jobs(specs: &[(u64, f64, f64, u32)]) -> Vec<SimJob> {
        specs
            .iter()
            .map(|&(id, submit, rt, procs)| SimJob::rigid(id, submit, rt, procs))
            .collect()
    }

    #[test]
    fn fcfs_respects_arrival_order_strictly() {
        // Head job too wide to start; narrow later job must NOT jump ahead.
        let js = jobs(&[(1, 0.0, 100.0, 64), (2, 1.0, 100.0, 64), (3, 2.0, 10.0, 1)]);
        let result = Simulation::new(SimConfig::new(64), js).run(&mut Fcfs);
        let j3 = result.finished.iter().find(|f| f.id == 3).unwrap();
        assert!(
            j3.start >= 200.0,
            "strict FCFS must not backfill, start {}",
            j3.start
        );
    }

    #[test]
    fn greedy_fcfs_starts_any_fitting_job() {
        let js = jobs(&[(1, 0.0, 100.0, 64), (2, 1.0, 100.0, 64), (3, 2.0, 10.0, 1)]);
        let result = Simulation::new(SimConfig::new(64), js).run(&mut SortedGreedy::greedy_fcfs());
        let j3 = result.finished.iter().find(|f| f.id == 3).unwrap();
        // job 3 fits alongside nothing at t=2 (machine full)... wait: job1 uses the
        // whole machine, so greedy cannot start it either until 100. But at t=100 the
        // greedy pass starts job 2 (arrival order) and job 3 does not fit; at 200 it runs.
        // To actually see the difference use a half-machine head job:
        assert!(j3.end <= result.end_time);
    }

    #[test]
    fn greedy_variants_backfill_around_wide_head() {
        let js = jobs(&[(1, 0.0, 100.0, 48), (2, 1.0, 100.0, 32), (3, 2.0, 10.0, 8)]);
        // Strict FCFS: job 3 waits for job 2 to start (t=100).
        let strict = Simulation::new(SimConfig::new(64), js.clone()).run(&mut Fcfs);
        let strict_j3 = strict.finished.iter().find(|f| f.id == 3).unwrap().start;
        assert!(strict_j3 >= 100.0);
        // Greedy: job 3 starts immediately in the 16 spare processors.
        let greedy = Simulation::new(SimConfig::new(64), js).run(&mut SortedGreedy::greedy_fcfs());
        let greedy_j3 = greedy.finished.iter().find(|f| f.id == 3).unwrap().start;
        assert_eq!(greedy_j3, 2.0);
    }

    #[test]
    fn sjf_prefers_short_jobs() {
        // All jobs need the whole machine; SJF orders by estimate.
        let mut js = jobs(&[
            (1, 0.0, 1000.0, 64),
            (2, 1.0, 10.0, 64),
            (3, 2.0, 100.0, 64),
        ]);
        // make job 1 running first impossible to avoid: it arrives first alone.
        js[0].submit = 0.0;
        let result = Simulation::new(SimConfig::new(64), js).run(&mut SortedGreedy::sjf());
        let j2 = result.finished.iter().find(|f| f.id == 2).unwrap();
        let j3 = result.finished.iter().find(|f| f.id == 3).unwrap();
        assert!(
            j2.start < j3.start,
            "SJF should run the 10s job before the 100s job"
        );
    }

    #[test]
    fn ljf_prefers_long_jobs() {
        let js = jobs(&[(1, 0.0, 50.0, 64), (2, 1.0, 10.0, 64), (3, 2.0, 100.0, 64)]);
        let result = Simulation::new(SimConfig::new(64), js).run(&mut SortedGreedy::ljf());
        let j2 = result.finished.iter().find(|f| f.id == 2).unwrap();
        let j3 = result.finished.iter().find(|f| f.id == 3).unwrap();
        assert!(
            j3.start < j2.start,
            "LJF should run the 100s job before the 10s job"
        );
    }

    #[test]
    fn widest_and_narrowest_order_by_size() {
        let js = jobs(&[(1, 0.0, 10.0, 64), (2, 1.0, 10.0, 8), (3, 2.0, 10.0, 32)]);
        let widest =
            Simulation::new(SimConfig::new(64), js.clone()).run(&mut SortedGreedy::widest());
        let narrow = Simulation::new(SimConfig::new(64), js).run(&mut SortedGreedy::narrowest());
        let order = |r: &psbench_sim::SimulationResult, id: u64| {
            r.finished.iter().find(|f| f.id == id).unwrap().start
        };
        // After job 1 finishes at t=10, widest runs job 3 before job 2,
        // narrowest runs job 2 before (or at the same time as) job 3 if both fit.
        assert!(order(&widest, 3) <= order(&widest, 2));
        assert!(order(&narrow, 2) <= order(&narrow, 3));
    }

    #[test]
    fn all_jobs_complete_under_every_policy() {
        let js: Vec<SimJob> = (0..150)
            .map(|i| {
                SimJob::rigid(
                    i + 1,
                    (i * 20) as f64,
                    30.0 + (i % 5) as f64 * 200.0,
                    1 + (i % 60) as u32,
                )
            })
            .collect();
        let mut policies: Vec<Box<dyn Scheduler>> = vec![
            Box::new(Fcfs),
            Box::new(SortedGreedy::sjf()),
            Box::new(SortedGreedy::ljf()),
            Box::new(SortedGreedy::widest()),
            Box::new(SortedGreedy::narrowest()),
            Box::new(SortedGreedy::greedy_fcfs()),
        ];
        for p in policies.iter_mut() {
            let result = Simulation::new(SimConfig::new(64), js.clone()).run(p.as_mut());
            assert_eq!(result.finished.len(), 150, "policy {}", p.name());
            assert_eq!(result.unfinished, 0, "policy {}", p.name());
            assert_eq!(result.rejected_decisions, 0, "policy {}", p.name());
        }
    }
}
