//! Gang scheduling with an Ousterhout matrix.
//!
//! Gang scheduling time-slices the machine between *rows* of a matrix; all the
//! processes of a job occupy one row, so they are always coscheduled — the property
//! Section 2.2 identifies as crucial for fine-grained synchronization. In the
//! simulator's rate-based execution model every job in an `R`-row matrix runs with
//! time share `1/R`.

use psbench_sim::{Decision, Scheduler, SchedulerContext, SchedulerEvent};
use serde::{Deserialize, Serialize};

/// How jobs are packed into matrix rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum Packing {
    /// First fit: a new job goes into the first row with enough free processors.
    #[default]
    FirstFit,
    /// Best fit: the row with the least remaining space that still fits.
    BestFit,
}

/// One row of the Ousterhout matrix, with its occupancy maintained
/// incrementally so packing decisions don't re-sum the row per candidate.
#[derive(Debug, Clone, Default)]
struct Row {
    jobs: Vec<(u64, u32)>, // (job id, procs)
    used: u32,
}

/// An Ousterhout-matrix gang scheduler.
#[derive(Debug, Clone)]
pub struct GangScheduler {
    /// Packing rule for new jobs.
    pub packing: Packing,
    /// Maximum number of rows (multiprogramming level); jobs queue when exceeded.
    pub max_rows: usize,
    rows: Vec<Row>,
    machine: u32,
}

impl GangScheduler {
    /// Create a gang scheduler for a machine of the given size.
    pub fn new(machine_size: u32, max_rows: usize, packing: Packing) -> Self {
        GangScheduler {
            packing,
            max_rows: max_rows.max(1),
            rows: Vec::new(),
            machine: machine_size,
        }
    }

    fn push_to_row(&mut self, row: usize, job_id: u64, procs: u32) {
        self.rows[row].jobs.push((job_id, procs));
        self.rows[row].used += procs;
    }

    fn find_row(&self, procs: u32) -> Option<usize> {
        let fits = self
            .rows
            .iter()
            .enumerate()
            .filter(|(_, row)| row.used + procs <= self.machine);
        match self.packing {
            Packing::FirstFit => fits.map(|(i, _)| i).next(),
            // Least remaining space first; ties by lowest row index.
            Packing::BestFit => fits
                .min_by_key(|&(i, row)| (self.machine - row.used - procs, i))
                .map(|(i, _)| i),
        }
    }

    fn remove_job(&mut self, job_id: u64) {
        // Remove *every* entry for the job: a queued-but-unstartable job can be
        // re-admitted on successive reacts and accumulate duplicate entries
        // (even within one row), and leaving any behind would permanently
        // inflate the row's occupancy and depress every share.
        for row in &mut self.rows {
            let removed: u32 = row
                .jobs
                .iter()
                .filter(|(id, _)| *id == job_id)
                .map(|(_, procs)| *procs)
                .sum();
            if removed > 0 {
                row.jobs.retain(|(id, _)| *id != job_id);
                row.used -= removed;
            }
        }
        self.rows.retain(|row| !row.jobs.is_empty());
    }

    /// Reconcile the matrix after a batched completion consult: drop every
    /// entry whose job is neither running nor queued any more. The engine
    /// coalesces same-instant completions into one `CompletionBatch` without
    /// per-id notifications, so the matrix is diffed against the context
    /// instead.
    fn purge_departed(&mut self, ctx: &SchedulerContext<'_>) {
        let running: std::collections::HashSet<u64> =
            ctx.running.iter().map(|r| r.job.id).collect();
        for row in &mut self.rows {
            let mut removed = 0u32;
            row.jobs.retain(|(id, procs)| {
                let keep = running.contains(id) || ctx.queue.get(*id).is_some();
                if !keep {
                    removed += *procs;
                }
                keep
            });
            row.used -= removed;
        }
        self.rows.retain(|row| !row.jobs.is_empty());
    }

    /// Try to admit one queued job into the matrix, recording it in `to_start`
    /// on success. Mirrors the packing rules: an existing row with space, else
    /// a new row while the multiprogramming level allows, else the job waits.
    fn try_admit(&mut self, id: u64, procs: u32, to_start: &mut Vec<(u64, u32)>) {
        let procs = procs.min(self.machine).max(1);
        match self.find_row(procs) {
            Some(r) => {
                self.push_to_row(r, id, procs);
                to_start.push((id, procs));
            }
            None if self.rows.len() < self.max_rows => {
                self.rows.push(Row {
                    jobs: vec![(id, procs)],
                    used: procs,
                });
                to_start.push((id, procs));
            }
            None => {} // matrix full: job waits in the queue
        }
    }

    /// Current number of rows (the multiprogramming level).
    pub fn rows(&self) -> usize {
        self.rows.len()
    }

    fn share(&self) -> f64 {
        1.0 / self.rows.len().max(1) as f64
    }

    fn rebalance(&self, ctx: &SchedulerContext<'_>) -> Vec<Decision> {
        let share = self.share();
        // Sorted by id so the decision order (and hence the engine's ledger
        // arithmetic) is independent of the running-set layout.
        let mut ids: Vec<u64> = ctx
            .running
            .iter()
            .filter(|r| (r.share - share).abs() > 1e-9)
            .map(|r| r.job.id)
            .collect();
        ids.sort_unstable();
        ids.into_iter()
            .map(|job_id| Decision::SetShare { job_id, share })
            .collect()
    }
}

impl Scheduler for GangScheduler {
    fn name(&self) -> &str {
        "gang"
    }

    fn react(&mut self, ctx: &SchedulerContext<'_>, event: SchedulerEvent) -> Vec<Decision> {
        // Keep the matrix consistent with what actually finished.
        match event {
            SchedulerEvent::JobCompleted { job_id } => self.remove_job(job_id),
            SchedulerEvent::CompletionBatch { .. } => self.purge_departed(ctx),
            _ => {}
        }
        // Admit queued jobs into the matrix, in arrival order. While the
        // matrix can still open rows every job is admitted, so the plain
        // arrival-order walk costs one step per admission; the moment it
        // fills, only jobs at most as wide as the emptiest row's slack can
        // enter, so the walk hands over to the backlog index — resuming at
        // its own position — and touches exactly those candidates instead of
        // the rest of the backlog.
        let mut to_start: Vec<(u64, u32)> = Vec::new();
        let mut resume: Option<Option<(f64, u64)>> = None;
        if self.rows.len() < self.max_rows {
            for q in ctx.queue.iter() {
                self.try_admit(q.job.id, q.job.procs, &mut to_start);
                if self.rows.len() == self.max_rows {
                    resume = Some(Some((q.queued_at, q.job.id)));
                    break;
                }
            }
        } else {
            resume = Some(None);
        }
        if let Some(after) = resume {
            let machine = self.machine;
            let slack = |rows: &[Row]| {
                rows.iter()
                    .map(|row| machine - row.used.min(machine))
                    .max()
                    .unwrap_or(0)
            };
            let bound = slack(&self.rows);
            if bound >= 1 {
                // Stream lazily and tighten the bound as admissions fill the
                // rows; admissions into a full matrix only reduce its slack,
                // so a dropped (too-wide) bucket can never become admissible
                // again within this react.
                let mut scan = ctx.queue.backfill_scan(bound, f64::INFINITY, 0, after);
                while let Some(q) = scan.next() {
                    self.try_admit(q.id, q.procs, &mut to_start);
                    let bound = slack(&self.rows);
                    if bound < 1 {
                        break;
                    }
                    scan.shrink(bound, 0);
                }
            }
        }
        // Shrink shares of already-running jobs first (so capacity frees up), then
        // start the newly admitted ones at the new share.
        let share = self.share();
        let mut decisions = self.rebalance(ctx);
        for (job_id, procs) in to_start {
            decisions.push(Decision::Start {
                job_id,
                procs: Some(procs),
                share,
            });
        }
        decisions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psbench_sim::{SimConfig, SimJob, Simulation};

    fn jobs(specs: &[(u64, f64, f64, u32)]) -> Vec<SimJob> {
        specs
            .iter()
            .map(|&(id, submit, rt, procs)| SimJob::rigid(id, submit, rt, procs))
            .collect()
    }

    #[test]
    fn single_row_runs_at_full_speed() {
        let js = jobs(&[(1, 0.0, 100.0, 32), (2, 0.0, 100.0, 32)]);
        let mut g = GangScheduler::new(64, 4, Packing::FirstFit);
        let result = Simulation::new(SimConfig::new(64), js).run(&mut g);
        // Both fit in one row: no time slicing, both end at 100.
        for f in &result.finished {
            assert!((f.end - 100.0).abs() < 1e-6, "end {}", f.end);
        }
    }

    #[test]
    fn two_rows_time_slice_the_machine() {
        let js = jobs(&[(1, 0.0, 100.0, 64), (2, 0.0, 100.0, 64)]);
        let mut g = GangScheduler::new(64, 4, Packing::FirstFit);
        let result = Simulation::new(SimConfig::new(64), js).run(&mut g);
        assert_eq!(result.finished.len(), 2);
        // Two full-machine jobs share the machine: both take ~200 s wall clock, but
        // both *start* immediately (no queueing wait), which is gang scheduling's point.
        for f in &result.finished {
            assert_eq!(f.start, 0.0);
            assert!((f.end - 200.0).abs() < 1.0, "end {}", f.end);
        }
        assert_eq!(result.rejected_decisions, 0);
    }

    #[test]
    fn completion_restores_full_speed_to_remaining_jobs() {
        // Job 1 is short; once it completes, job 2 should speed back up.
        let js = jobs(&[(1, 0.0, 50.0, 64), (2, 0.0, 100.0, 64)]);
        let mut g = GangScheduler::new(64, 4, Packing::FirstFit);
        let result = Simulation::new(SimConfig::new(64), js).run(&mut g);
        let j1 = result.finished.iter().find(|f| f.id == 1).unwrap();
        let j2 = result.finished.iter().find(|f| f.id == 2).unwrap();
        // Job 1 runs at 1/2 speed until done at t=100. Job 2 then has 50 s of work
        // left and runs at full speed: ends at 150.
        assert!((j1.end - 100.0).abs() < 1.0, "j1 end {}", j1.end);
        assert!((j2.end - 150.0).abs() < 1.0, "j2 end {}", j2.end);
    }

    #[test]
    fn max_rows_limits_multiprogramming() {
        let js = jobs(&[
            (1, 0.0, 100.0, 64),
            (2, 0.0, 100.0, 64),
            (3, 0.0, 100.0, 64),
        ]);
        let mut g = GangScheduler::new(64, 2, Packing::FirstFit);
        let result = Simulation::new(SimConfig::new(64), js).run(&mut g);
        assert_eq!(result.finished.len(), 3);
        // Only two jobs share the machine at first; the third starts only after one
        // of them completes.
        let starts: Vec<f64> = result.finished.iter().map(|f| f.start).collect();
        assert_eq!(starts.iter().filter(|&&s| s == 0.0).count(), 2);
        assert_eq!(starts.iter().filter(|&&s| s > 0.0).count(), 1);
    }

    #[test]
    fn best_fit_packs_tighter_than_first_fit() {
        // Rows after jobs of 32 and 48 procs on a 64-proc machine: first-fit puts a
        // 16-proc job in row 0 (with the 32), best-fit puts it in row 1 (with the 48).
        let mut ff = GangScheduler::new(64, 4, Packing::FirstFit);
        let mut bf = GangScheduler::new(64, 4, Packing::BestFit);
        for g in [&mut ff, &mut bf] {
            g.rows.push(Row {
                jobs: vec![(1, 32)],
                used: 32,
            });
            g.rows.push(Row {
                jobs: vec![(2, 48)],
                used: 48,
            });
        }
        assert_eq!(ff.find_row(16), Some(0));
        assert_eq!(bf.find_row(16), Some(1));
    }

    #[test]
    fn gang_starts_jobs_immediately_that_space_sharing_queues() {
        use crate::queue_order::Fcfs;
        let js = jobs(&[(1, 0.0, 1000.0, 64), (2, 1.0, 10.0, 64)]);
        let fcfs = Simulation::new(SimConfig::new(64), js.clone()).run(&mut Fcfs);
        let mut g = GangScheduler::new(64, 4, Packing::FirstFit);
        let gang = Simulation::new(SimConfig::new(64), js).run(&mut g);
        let wait = |r: &psbench_sim::SimulationResult, id: u64| {
            r.finished.iter().find(|f| f.id == id).unwrap().wait()
        };
        assert!(wait(&fcfs, 2) > 900.0);
        assert!(wait(&gang, 2) < 1.0 + 1e-9);
        // and the short job's *response* is far better under gang scheduling
        let resp = |r: &psbench_sim::SimulationResult, id: u64| {
            r.finished.iter().find(|f| f.id == id).unwrap().response()
        };
        assert!(resp(&gang, 2) < resp(&fcfs, 2) / 10.0);
    }

    #[test]
    fn remove_job_purges_duplicate_matrix_entries() {
        // A queued-but-unstartable job can be re-admitted on successive reacts
        // and accumulate duplicate entries, even within one row; completion
        // must purge them all or the row's occupancy stays inflated forever.
        let mut g = GangScheduler::new(64, 4, Packing::FirstFit);
        g.rows.push(Row {
            jobs: vec![(1, 16), (1, 16), (2, 8)],
            used: 40,
        });
        g.rows.push(Row {
            jobs: vec![(1, 16)],
            used: 16,
        });
        g.remove_job(1);
        assert_eq!(g.rows.len(), 1);
        assert_eq!(g.rows[0].jobs, vec![(2, 8)]);
        assert_eq!(g.rows[0].used, 8);
        g.remove_job(2);
        assert_eq!(g.rows(), 0);
    }

    #[test]
    fn matrix_bookkeeping_on_large_workload() {
        let js: Vec<SimJob> = (0..120)
            .map(|i| {
                SimJob::rigid(
                    i + 1,
                    (i * 10) as f64,
                    100.0 + (i % 4) as f64 * 200.0,
                    1 + (i % 64) as u32,
                )
            })
            .collect();
        let mut g = GangScheduler::new(64, 5, Packing::BestFit);
        let result = Simulation::new(SimConfig::new(64), js).run(&mut g);
        assert_eq!(result.finished.len(), 120);
        assert_eq!(result.unfinished, 0);
    }
}
