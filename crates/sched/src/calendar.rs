//! The persistent reservation calendar behind conservative backfilling.
//!
//! The seed implementation of conservative backfilling rebuilt the whole
//! reservation profile from scratch on every react, which is O(backlog ·
//! profile) per capacity-freeing event — cubic end to end on saturated
//! archive-scale traces (measured: 2 000 jobs ≈ 3 s, 10 000 ≈ 254 s). Worse,
//! the rebuilt-from-scratch semantics *moves* Θ(backlog) reservations per
//! react under early completions (92 % of candidate re-placements genuinely
//! move on a saturated Lublin trace), so no incremental implementation of
//! that exact semantics can beat Θ(events · backlog). This module therefore
//! implements **lazy compression**, the variant production schedulers ship:
//! the calendar of committed future free capacity is **durable scheduler
//! state**, reservations are promises that persist across reacts, and a
//! promise is only revisited when it is *due* — when its committed start has
//! arrived. Far-future reservations keep their slot untouched until then; a
//! window vacated far in the future is refilled by later arrivals, not by
//! sliding committed promises across it. Every job still starts no later
//! than its committed slot, so the conservative guarantee — no queued job is
//! ever delayed by a backfill — is preserved verbatim.
//!
//! * **Arrival** — the new job is placed once, at the earliest slot that does
//!   not delay any committed reservation, and the calendar is updated
//!   incrementally (no other reservation moves). Placement is
//!   **probe-budgeted** (see `PLACEMENT_PROBES`): at most that many
//!   candidate windows are tested; if the budget runs out the job is
//!   *parked* at its width's tail bound — the per-width time maintained by
//!   `Park`, past which capacity provably never dips below the width again —
//!   where the window is free by construction. Budget exhaustion implies the
//!   true earliest slot is in the future, so parking never steals `now`
//!   starts, and the parked window never collides with a commitment.
//! * **Start** — a reservation whose slot is reachable now converts into a
//!   running occupancy anchored at `now`.
//! * **Completion / timer** — the walk runs two passes, implemented
//!   identically by the incremental calendar and the exhaustive oracle:
//!
//!   1. **Due pass** — every reservation whose committed start is ≤ `now` is
//!      re-placed once, in `(start, id)` order: its occupancy is lifted and
//!      it moves to its earliest slot. Its old window is still feasible
//!      under its own lift, so the new slot is never later; a job whose new
//!      slot is `now` starts, and any other re-commit lands strictly after
//!      `now`, so the pass terminates without bookkeeping.
//!   2. **Starter pass** — a queued job can start *right now* iff its width
//!      `p` stays continuously free for its whole duration, i.e. `now + d ≤
//!      dip(p)`, the calendar's first future dip below `p` (see
//!      `StepFn::dip_times`). The dip staircase is handed to the backlog
//!      index ([`psbench_sim::JobQueue::staircase_scan`]), which streams
//!      exactly the plausible candidates in arrival order; each is re-tested
//!      against the fresh dips, and each start (which consumes capacity at
//!      `now` but releases the job's far reservation) rebinds the scan.
//!      Every queued job gets at most one arrival-order turn — the same
//!      decision sequence as the oracle's full fresh-per-candidate scan.
//!      The dip scan is clamped to `now + dur_bound` (the largest duration
//!      placed since the last rebuild): any true dip beyond that horizon
//!      passes every `now + d ≤ dip` test just like the `∞` the clamp
//!      reports, so decisions are unchanged.
//!
//!   Because due slots can fall between completions (a reservation can be
//!   committed at an instant where nothing completes), every react arms an
//!   engine **wakeup timer** for the earliest committed start
//!   ([`Decision::Wakeup`]); the timer event re-enters the same walk. The
//!   engine coalesces duplicate requests for the same instant.
//! * **Outage / kill / overdue estimate** — rare events that invalidate the
//!   committed base fall back to a full rebuild that re-reserves every queued
//!   job in arrival order (and rebases the parking bounds exactly from the
//!   running set).
//!
//! # Calendar invariants
//!
//! The calendar is a step function `(time, free_procs)` with:
//!
//! * **sortedness** — breakpoint times are strictly increasing; the first
//!   step is the `now` anchor and the last step's capacity extends to
//!   infinity;
//! * **non-negative, integer-valued capacity** — every capacity is a sum and
//!   difference of processor counts (shares are 1.0 for rigid dedicated
//!   jobs), so all arithmetic is exact in f64 and all comparisons are exact —
//!   no tolerances, which is what makes the optimized and exhaustive
//!   implementations bit-identical rather than tolerance-dependent;
//! * **redundant-step neutrality** — a step whose capacity equals its
//!   predecessor's does not change the function, and provably cannot change
//!   `StepFn::earliest_start` either: if such a step `τ'` were the earliest
//!   feasible slot, its predecessor breakpoint `τ` (same capacity, no
//!   breakpoints between, window `[τ, τ+d)` ⊆ `{τ}` ∪ `(τ, τ')` ∪ `[τ',
//!   τ'+d)`) is feasible too and comes earlier. Both implementations may
//!   therefore differ in redundant steps (the incremental calendar carries
//!   residue from released occupancies; the exhaustive one rebuilds clean)
//!   while producing identical decisions;
//! * **probe determinism** — the candidate windows tested by
//!   `StepFn::earliest_start_capped` are function-intrinsic (the first
//!   capacity-recovery crossing after each disqualifying dip can never sit
//!   on a redundant step), so both implementations probe the same sequence
//!   and exhaust the same budget at the same point;
//! * **compression semantics** — a re-placed job's old slot is always still
//!   feasible after lifting its own occupancy, so compression moves
//!   reservations monotonically earlier and never violates another job's
//!   promise.
//!
//! [`ConservativeOracle`] is the exhaustive twin: same persistent-promise
//! semantics, same probe budget and parking bounds, but it rebuilds its
//! profile from scratch every react and scans the whole queue instead of
//! consulting the backlog index. It exists to be obviously correct; the
//! equivalence suite and the adversarial proptest in
//! `tests/engine_equivalence.rs` drive both through identical event
//! sequences and require bit-identical decisions.

use psbench_sim::{Decision, Scheduler, SchedulerContext, SchedulerEvent};
use std::collections::{BTreeSet, HashMap};

/// The shared time-comparison tolerance of the *planning* layer (the EASY
/// shadow math and the replanning `Profile`), in seconds. The calendar itself
/// uses exact comparisons and does not consume this.
pub(crate) const TIME_EPS: f64 = 1e-9;

/// Are two instants equal within the planning tolerance? This is the single
/// epsilon-compare helper every tolerant time comparison in the crate goes
/// through, so insertion-dedup and range-membership tests can never disagree
/// about whether two breakpoints are "the same instant" (the asymmetry the
/// seed's `Profile::reserve` suffered from).
pub(crate) fn eps_eq(a: f64, b: f64) -> bool {
    (a - b).abs() < TIME_EPS
}

/// Is `a` at or after `b`, treating instants within the tolerance as equal?
pub(crate) fn eps_ge(a: f64, b: f64) -> bool {
    a >= b || eps_eq(a, b)
}

/// Is `a` strictly before `b`, beyond the tolerance?
pub(crate) fn eps_lt(a: f64, b: f64) -> bool {
    a < b && !eps_eq(a, b)
}

/// The operations a free-capacity step function needs to support conservative
/// planning. Implemented by the exhaustive [`StepVec`] (flat, obviously
/// correct) and the chunked [`Calendar`] (incremental, sublinear updates);
/// the two must agree exactly, which the differential unit tests below and
/// the scheduler-level proptest enforce.
pub(crate) trait StepFn {
    /// Free capacity at time `t` (the first step's capacity also applies to
    /// instants before it — it is the `now` anchor).
    fn capacity_at(&self, t: f64) -> f64;

    /// Add `delta` processors of free capacity on `[from, to)`. `to` may be
    /// `f64::INFINITY` (a release that never ends). `from` is clipped to the
    /// anchor; an empty or inverted range is a no-op. Returns the minimum
    /// capacity over `[from, to)` *after* the update (`f64::INFINITY` for a
    /// no-op) — consumers feed it to [`Park::note`]. The minimum is a
    /// property of the updated function, so both implementations return the
    /// same value bit for bit.
    fn add_range(&mut self, from: f64, to: f64, delta: f64) -> f64;

    /// Earliest time ≥ `from` at which `procs` processors are continuously
    /// free for `duration` seconds, or `f64::INFINITY` when no such time
    /// exists (the machine is never that wide). Candidates are `from` and
    /// every breakpoint after it; a candidate `c` is feasible when
    /// `capacity_at(c) ≥ procs` and no breakpoint in `(c, c + duration)`
    /// dips below `procs`. All comparisons exact.
    ///
    /// Production placement goes through [`Self::earliest_start_capped`];
    /// this unbudgeted form is the executable spec the equivalence tests
    /// exercise directly on both implementations.
    #[allow(dead_code)]
    fn earliest_start(&self, from: f64, procs: f64, duration: f64) -> f64;

    /// The **dip profile** at `from`: for each integer width `p` in
    /// `1..=⌊capacity_at(from)⌋`, `dips[p-1]` is the time of the first
    /// breakpoint after `from` whose capacity drops below `p`
    /// (`f64::INFINITY` when capacity never does). Empty when even one
    /// processor is busy at `from`.
    ///
    /// This encodes the immediate-start test in closed form: a job of width
    /// `p` and duration `d` satisfies `earliest_start(from, p, d) == from`
    /// exactly when `p ≤ dips.len()` and `from + d ≤ dips[p-1]` (the same
    /// float expression `from + d` the search compares breakpoints against,
    /// so the two agree bit for bit). Dips are non-increasing in `p`, and
    /// a single forward scan that tracks the running minimum capacity —
    /// stopping as soon as it drops below 1 — yields every level at once.
    /// Because dips are a property of the step *function*, redundant steps
    /// (equal capacity to their predecessor) never register, and the
    /// incremental and exhaustive implementations agree exactly.
    fn dip_times(&self, from: f64) -> Vec<f64>;

    /// [`StepFn::earliest_start`] with a probe budget: test at most `budget`
    /// candidate windows and return `None` when all of them failed (the
    /// caller parks the job instead — see [`Park`]). Candidates are `from`
    /// (when wide enough) followed by the successive *rise* points — the
    /// first breakpoint at or above `procs` after each failing window's
    /// first dip. Rises and dips are properties of the step function (a
    /// redundant step can never be the first breakpoint crossing a level),
    /// so both implementations probe the identical candidate sequence and
    /// give up after the identical amount of work.
    fn earliest_start_capped(
        &self,
        from: f64,
        procs: f64,
        duration: f64,
        budget: usize,
    ) -> Option<f64>;
}

/// Probe budget for one placement: how many candidate windows
/// [`StepFn::earliest_start_capped`] may test before the job is parked at
/// its width's [`Park`] bound. Semantically significant (a smaller budget
/// parks more jobs later than strict earliest-fit would), so it is part of
/// the specification both implementations share.
pub(crate) const PLACEMENT_PROBES: usize = 32;

/// Per-width parking bounds: `t[p-1]` is an exact upper bound on the last
/// instant at which fewer than `p` processors are committed free, so a
/// reservation of width `p` placed at `max(t[p-1], now)` can never collide
/// with a committed promise. Rebased exactly from the (non-decreasing) base
/// profile on rebuild; every consume afterwards widens the affected levels
/// to the consumed window's end via [`Park::note`]. Releases are ignored —
/// they only move the true bound earlier, so the stored bound stays valid
/// (merely conservative) until the next rebase.
#[derive(Debug, Clone, Default)]
pub(crate) struct Park {
    t: Vec<f64>,
}

impl Park {
    /// Exact bounds for the rebuild base: `free` processors at `now`, plus
    /// each canonical completion's release. Capacity is non-decreasing here,
    /// so level `p` is last below-`p` right before the release that lifts
    /// the running total past it.
    fn rebase(&mut self, now: f64, free: f64, completions: &[(u64, f64, f64)]) {
        let total = free + completions.iter().map(|c| c.2).sum::<f64>();
        let n = total.floor().max(0.0) as usize;
        self.t = vec![now; n];
        let mut cap = free;
        for &(_, end, procs) in completions {
            let lo = (cap.floor() as usize + 1).max(1);
            cap += procs;
            let hi = (cap.floor() as usize).min(n);
            for p in lo..=hi {
                self.t[p - 1] = end;
            }
        }
    }

    /// A consume left minimum capacity `win_min` inside a window ending at
    /// `to`: every width above that minimum may now stay scarce until `to`.
    fn note(&mut self, to: f64, win_min: f64) {
        if !to.is_finite() {
            return;
        }
        let lo = if win_min < 0.0 {
            1
        } else {
            (win_min.floor() as usize + 1).max(1)
        };
        for p in lo..=self.t.len() {
            if self.t[p - 1] < to {
                self.t[p - 1] = to;
            }
        }
    }

    /// The parking bound for a width (`None` when the machine base never
    /// reaches it).
    fn time_for(&self, procs: f64) -> Option<f64> {
        let p = (procs.floor().max(1.0)) as usize;
        self.t.get(p - 1).copied()
    }
}

/// Shared dip-profile update: capacity drops from `runmin` to `cap` at time
/// `t`, so every integer level in `(cap, runmin]` sees its first dip at `t`.
fn record_dip(dips: &mut [f64], runmin: &mut f64, t: f64, cap: f64) {
    let lo = if cap < 0.0 {
        1
    } else {
        cap.floor() as usize + 1
    };
    let hi = (runmin.floor() as usize).min(dips.len());
    for p in lo.max(1)..=hi {
        dips[p - 1] = t;
    }
    *runmin = cap;
}

/// A flat, exhaustively recomputing step function: the reference
/// implementation of [`StepFn`], kept deliberately naive (linear scans
/// everywhere) so it is easy to audit. [`ConservativeOracle`] rebuilds one of
/// these from scratch every react.
#[derive(Debug, Clone, Default)]
pub(crate) struct StepVec {
    /// `(time, free_procs)`, strictly increasing times.
    steps: Vec<(f64, f64)>,
}

impl StepVec {
    pub(crate) fn anchored(now: f64, free: f64) -> Self {
        StepVec {
            steps: vec![(now, free)],
        }
    }
}

impl StepFn for StepVec {
    fn capacity_at(&self, t: f64) -> f64 {
        let mut cap = self.steps.first().map(|s| s.1).unwrap_or(0.0);
        for &(time, c) in &self.steps {
            if time <= t {
                cap = c;
            } else {
                break;
            }
        }
        cap
    }

    fn add_range(&mut self, from: f64, to: f64, delta: f64) -> f64 {
        let anchor = self.steps.first().map(|s| s.0).unwrap_or(from);
        let from = from.max(anchor);
        if from >= to {
            return f64::INFINITY;
        }
        for &t in &[from, to] {
            if t.is_finite() && !self.steps.iter().any(|s| s.0 == t) {
                let cap = self.capacity_at(t);
                let pos = self.steps.partition_point(|s| s.0 < t);
                self.steps.insert(pos, (t, cap));
            }
        }
        let mut win_min = f64::INFINITY;
        for s in &mut self.steps {
            if s.0 >= from && s.0 < to {
                s.1 += delta;
                win_min = win_min.min(s.1);
            }
        }
        win_min
    }

    fn earliest_start(&self, from: f64, procs: f64, duration: f64) -> f64 {
        self.earliest_start_capped(from, procs, duration, usize::MAX)
            .expect("unbounded search cannot exhaust its budget")
    }

    fn earliest_start_capped(
        &self,
        from: f64,
        procs: f64,
        duration: f64,
        budget: usize,
    ) -> Option<f64> {
        let first_bad_after = |t: f64| -> Option<f64> {
            self.steps
                .iter()
                .find(|s| s.0 > t && s.1 < procs)
                .map(|s| s.0)
        };
        let first_good_after = |t: f64| -> Option<f64> {
            self.steps
                .iter()
                .find(|s| s.0 > t && s.1 >= procs)
                .map(|s| s.0)
        };
        let mut candidate = if self.capacity_at(from) >= procs {
            Some(from)
        } else {
            first_good_after(from)
        };
        let mut probes = 0usize;
        while let Some(c) = candidate {
            probes += 1;
            if probes > budget {
                return None;
            }
            match first_bad_after(c) {
                Some(b) if b < c + duration => candidate = first_good_after(b),
                _ => return Some(c),
            }
        }
        Some(f64::INFINITY)
    }

    fn dip_times(&self, from: f64) -> Vec<f64> {
        let mut runmin = self.capacity_at(from);
        if runmin < 1.0 {
            return Vec::new();
        }
        let mut dips = vec![f64::INFINITY; runmin.floor() as usize];
        for &(t, cap) in &self.steps {
            if t <= from {
                continue;
            }
            if cap < runmin {
                record_dip(&mut dips, &mut runmin, t, cap);
                if runmin < 1.0 {
                    break;
                }
            }
        }
        dips
    }
}

/// Target steps per chunk of the incremental calendar. Splits happen at twice
/// this, so chunks hold between `CHUNK` and `2·CHUNK` steps (except the last).
const CHUNK: usize = 64;

/// One chunk of the calendar: a run of consecutive steps with a shared
/// capacity offset (so a range update covering the whole chunk is O(1)) and
/// cached min/max raw capacity (so searches can skip chunks wholesale).
#[derive(Debug, Clone)]
struct Chunk {
    /// `(time, raw_capacity)`; effective capacity is `raw + off`.
    steps: Vec<(f64, f64)>,
    /// Capacity offset applied to every step in this chunk.
    off: f64,
    /// Minimum raw capacity in the chunk.
    min: f64,
    /// Maximum raw capacity in the chunk.
    max: f64,
    /// Time of the chunk's last step (cached so skip tests during feasibility
    /// scans never have to dereference `steps`).
    end: f64,
}

impl Chunk {
    fn of(steps: Vec<(f64, f64)>) -> Chunk {
        let mut c = Chunk {
            steps,
            off: 0.0,
            min: 0.0,
            max: 0.0,
            end: f64::NEG_INFINITY,
        };
        c.refresh();
        c
    }

    fn refresh(&mut self) {
        self.min = f64::INFINITY;
        self.max = f64::NEG_INFINITY;
        for &(_, cap) in &self.steps {
            self.min = self.min.min(cap);
            self.max = self.max.max(cap);
        }
        self.end = self.steps.last().map(|s| s.0).unwrap_or(f64::NEG_INFINITY);
    }

    fn first_time(&self) -> f64 {
        self.steps[0].0
    }
}

/// The incremental calendar: the same step function as [`StepVec`], stored in
/// capacity-offset chunks so occupancy inserts, releases and slides cost
/// O(steps/CHUNK + CHUNK) instead of O(steps), and feasibility searches skip
/// whole chunks via the cached min/max capacities. See the module docs for
/// the invariants; every operation here preserves them and produces exactly
/// the function the flat reference would.
#[derive(Debug, Clone, Default)]
pub(crate) struct Calendar {
    chunks: Vec<Chunk>,
}

impl Calendar {
    /// Reset to a single anchor step `(now, free)`.
    pub(crate) fn reset(&mut self, now: f64, free: f64) {
        self.chunks.clear();
        self.chunks.push(Chunk::of(vec![(now, free)]));
    }

    /// Total number of steps (for the compaction heuristic and tests).
    pub(crate) fn len(&self) -> usize {
        self.chunks.iter().map(|c| c.steps.len()).sum()
    }

    /// Chunk index holding the last step with time ≤ `t` (or 0 if `t`
    /// precedes everything).
    fn chunk_at(&self, t: f64) -> usize {
        let ci = self.chunks.partition_point(|c| c.first_time() <= t);
        ci.saturating_sub(1)
    }

    /// Advance the anchor to `now`: drop steps strictly before `now` and make
    /// the first step exactly `(now, capacity_at(now))`. The function on
    /// `[now, ∞)` is unchanged.
    pub(crate) fn advance_to(&mut self, now: f64) {
        if self.chunks.is_empty() {
            self.reset(now, 0.0);
            return;
        }
        let cap = self.capacity_at(now);
        let ci = self.chunk_at(now);
        self.chunks.drain(..ci);
        let c = &mut self.chunks[0];
        let keep = c.steps.partition_point(|s| s.0 < now);
        c.steps.drain(..keep);
        if c.steps.first().map(|s| s.0 != now).unwrap_or(true) {
            c.steps.insert(0, (now, cap - c.off));
        }
        c.refresh();
    }

    /// Drop interior steps whose capacity equals their predecessor's
    /// (function-preserving, and decision-preserving by redundant-step
    /// neutrality), then re-chunk. Called by the scheduler when released
    /// occupancies have left enough residue behind.
    pub(crate) fn compact(&mut self) {
        let mut flat: Vec<(f64, f64)> = Vec::with_capacity(self.len());
        for c in &self.chunks {
            for &(t, cap) in &c.steps {
                let eff = cap + c.off;
                if flat
                    .last()
                    .map(|l: &(f64, f64)| l.1 == eff)
                    .unwrap_or(false)
                {
                    continue;
                }
                flat.push((t, eff));
            }
        }
        self.chunks.clear();
        for piece in flat.chunks(CHUNK.max(1)) {
            self.chunks.push(Chunk::of(piece.to_vec()));
        }
        if self.chunks.is_empty() {
            self.chunks.push(Chunk::of(vec![(0.0, 0.0)]));
        }
    }

    /// Ensure a breakpoint exists at exactly `t` (splitting its chunk when it
    /// grows past `2·CHUNK`).
    fn ensure_breakpoint(&mut self, t: f64) {
        let ci = self.chunk_at(t);
        let c = &mut self.chunks[ci];
        let pos = c.steps.partition_point(|s| s.0 < t);
        if c.steps.get(pos).map(|s| s.0 == t).unwrap_or(false) {
            return;
        }
        // Capacity just before `t` within this chunk; `t` after the chunk's
        // last step inherits the last step's capacity.
        let raw = if pos == 0 {
            c.steps[0].1
        } else {
            c.steps[pos - 1].1
        };
        c.steps.insert(pos, (t, raw));
        c.min = c.min.min(raw);
        c.max = c.max.max(raw);
        c.end = c.end.max(t);
        if c.steps.len() > 2 * CHUNK {
            let tail = c.steps.split_off(c.steps.len() / 2);
            let off = c.off;
            c.refresh();
            let mut new = Chunk::of(tail);
            new.off = off;
            // `Chunk::of` computed min/max of raw values; offsets carry over.
            self.chunks.insert(ci + 1, new);
        }
    }
}

impl Calendar {
    /// [`StepFn::dip_times`] clamped to `horizon`: dips later than `horizon`
    /// are reported as `f64::INFINITY` and the scan stops there. Safe
    /// whenever every duration subsequently tested against the profile is at
    /// most `horizon - from`: a true dip beyond the horizon and an infinite
    /// one then pass exactly the same `from + d ≤ dip` tests, so decisions
    /// are unchanged while the scan skips the (possibly long) quiet tail.
    fn dip_times_upto(&self, from: f64, horizon: f64) -> Vec<f64> {
        let mut runmin = self.capacity_at(from);
        if runmin < 1.0 || self.chunks.is_empty() {
            return Vec::new();
        }
        let mut dips = vec![f64::INFINITY; runmin.floor() as usize];
        let mut ci = self.chunk_at(from);
        'scan: while ci < self.chunks.len() {
            let c = &self.chunks[ci];
            if c.first_time() > horizon {
                break;
            }
            if c.min + c.off < runmin {
                for &(t, raw) in &c.steps {
                    if t <= from {
                        continue;
                    }
                    if t > horizon {
                        break 'scan;
                    }
                    let cap = raw + c.off;
                    if cap < runmin {
                        record_dip(&mut dips, &mut runmin, t, cap);
                        if runmin < 1.0 {
                            break 'scan;
                        }
                    }
                }
            }
            ci += 1;
        }
        dips
    }
}

impl StepFn for Calendar {
    fn capacity_at(&self, t: f64) -> f64 {
        if self.chunks.is_empty() {
            return 0.0;
        }
        let c = &self.chunks[self.chunk_at(t)];
        let pos = c.steps.partition_point(|s| s.0 <= t);
        let raw = if pos == 0 {
            c.steps[0].1
        } else {
            c.steps[pos - 1].1
        };
        raw + c.off
    }

    fn add_range(&mut self, from: f64, to: f64, delta: f64) -> f64 {
        if self.chunks.is_empty() {
            return f64::INFINITY;
        }
        let anchor = self.chunks[0].first_time();
        let from = from.max(anchor);
        if from >= to {
            return f64::INFINITY;
        }
        self.ensure_breakpoint(from);
        if to.is_finite() {
            self.ensure_breakpoint(to);
        }
        let mut win_min = f64::INFINITY;
        let first = self.chunk_at(from);
        for c in self.chunks[first..].iter_mut() {
            if c.first_time() >= to {
                break;
            }
            let last_t = c.end;
            if c.first_time() >= from && last_t < to {
                // Fully covered: shift the whole chunk in O(1).
                c.off += delta;
                win_min = win_min.min(c.min + c.off);
                continue;
            }
            for s in c.steps.iter_mut() {
                if s.0 >= from && s.0 < to {
                    s.1 += delta;
                    win_min = win_min.min(s.1 + c.off);
                }
            }
            c.refresh();
        }
        win_min
    }

    fn earliest_start(&self, from: f64, procs: f64, duration: f64) -> f64 {
        self.earliest_start_capped(from, procs, duration, usize::MAX)
            .expect("unbounded search cannot exhaust its budget")
    }

    fn earliest_start_capped(
        &self,
        from: f64,
        procs: f64,
        duration: f64,
        budget: usize,
    ) -> Option<f64> {
        // Same candidate/probe sequence as the flat reference, computed as a
        // single forward walk over the steps at or after `from`: a (chunk,
        // step) position advances monotonically, alternating between "seek
        // the next good step" (the next candidate) and "seek the next bad
        // step" (the candidate's window check). Chunks are skipped wholesale
        // via the cached min/max capacities; every surviving step is visited
        // exactly once per call.
        if self.chunks.is_empty() {
            return Some(f64::INFINITY);
        }
        let mut ci = self.chunk_at(from);
        // First position strictly after `from`.
        let mut si = self.chunks[ci].steps.partition_point(|s| s.0 <= from);
        let mut candidate = if self.capacity_at(from) >= procs {
            Some(from)
        } else {
            None
        };
        let mut probes = 0usize;
        loop {
            match candidate {
                None => {
                    // Seek the next step with capacity ≥ procs; it becomes
                    // the next candidate. Running out of steps means the
                    // backlog never recovers to `procs` — report "never".
                    loop {
                        if ci >= self.chunks.len() {
                            return Some(f64::INFINITY);
                        }
                        let c = &self.chunks[ci];
                        if si >= c.steps.len() || c.max + c.off < procs {
                            ci += 1;
                            si = 0;
                            continue;
                        }
                        let mut found = None;
                        while si < c.steps.len() {
                            let (t, raw) = c.steps[si];
                            si += 1;
                            if raw + c.off >= procs {
                                found = Some(t);
                                break;
                            }
                        }
                        if let Some(t) = found {
                            candidate = Some(t);
                            break;
                        }
                        ci += 1;
                        si = 0;
                    }
                }
                Some(cand) => {
                    probes += 1;
                    if probes > budget {
                        return None;
                    }
                    // Seek the next step with capacity < procs. None before
                    // `cand + duration` (or none at all — the profile stays
                    // good forever) means the candidate's window is feasible.
                    // The chunk-min skip is conservative in the first chunk
                    // (its min covers steps before the position too), which
                    // only costs a scan, never correctness.
                    'window: loop {
                        if ci >= self.chunks.len() {
                            return Some(cand);
                        }
                        let c = &self.chunks[ci];
                        if si >= c.steps.len() || c.min + c.off >= procs {
                            ci += 1;
                            si = 0;
                            continue;
                        }
                        while si < c.steps.len() {
                            let (t, raw) = c.steps[si];
                            si += 1;
                            if raw + c.off < procs {
                                if t < cand + duration {
                                    // Candidate dies; resume the good-seek
                                    // from the current position.
                                    candidate = None;
                                    break 'window;
                                }
                                return Some(cand);
                            }
                        }
                        ci += 1;
                        si = 0;
                    }
                }
            }
        }
    }

    fn dip_times(&self, from: f64) -> Vec<f64> {
        let mut runmin = self.capacity_at(from);
        if runmin < 1.0 || self.chunks.is_empty() {
            return Vec::new();
        }
        let mut dips = vec![f64::INFINITY; runmin.floor() as usize];
        let mut ci = self.chunk_at(from);
        'scan: while ci < self.chunks.len() {
            let c = &self.chunks[ci];
            // A chunk whose minimum stays at or above the running minimum
            // records no dip at any level — skip it wholesale.
            if c.min + c.off < runmin {
                for &(t, raw) in &c.steps {
                    if t <= from {
                        continue;
                    }
                    let cap = raw + c.off;
                    if cap < runmin {
                        record_dip(&mut dips, &mut runmin, t, cap);
                        if runmin < 1.0 {
                            break 'scan;
                        }
                    }
                }
            }
            ci += 1;
        }
        dips
    }
}

/// One ulp up (positive finite input): the margin unit for the staircase
/// widening below.
fn ulp_up(x: f64) -> f64 {
    f64::from_bits(x.to_bits() + 1)
}

/// The backlog-index staircase for a dip profile: `(inclusive procs edge,
/// max estimate)` stairs, ascending by procs, covering every width at which
/// *some* job could still start (`now + 1 ≤ dip`, since every duration is at
/// least 1s). The estimate bound is `dip - now` widened by a few ulps of the
/// dip so the subtraction's rounding can never exclude a job the exact test
/// `now + d ≤ dip` would accept — the stream must be a superset of the true
/// starters (spurious candidates are dropped by the fresh re-test; a missing
/// one would diverge from the oracle). Widths are grouped into stairs by
/// equal bound.
fn stairs_of(dips: &[f64], now: f64) -> Vec<(u32, f64)> {
    let mut stairs: Vec<(u32, f64)> = Vec::new();
    for (i, &dip) in dips.iter().enumerate() {
        if now + 1.0 > dip {
            break;
        }
        let bound = if dip.is_finite() {
            ((dip - now) + 4.0 * (ulp_up(dip) - dip)).max(1.0)
        } else {
            f64::INFINITY
        };
        let p = (i + 1) as u32;
        match stairs.last_mut() {
            Some(s) if s.1 == bound => s.0 = p,
            _ => stairs.push((p, bound)),
        }
    }
    stairs
}

/// A committed reservation: the job will run on `procs` processors over
/// `[start, end)` unless compression slides it earlier. `start` is
/// `f64::INFINITY` (and the job holds no calendar occupancy) when the machine
/// is currently too narrow for the job at any time — a rebuild re-places it
/// when capacity returns.
#[derive(Debug, Clone, Copy)]
struct Slot {
    start: f64,
    end: f64,
    procs: f64,
}

/// The canonical, bit-stable completion profile used by both conservative
/// implementations — [`SchedulerContext::canonical_completions`]: `(id, end,
/// procs)` sorted by `(end, id)` with `end = max(started_at + max(estimate,
/// 1), now)`. Unlike [`SchedulerContext::completion_profile`] (whose `now +
/// est_remaining` arithmetic drifts in ulps as `now` advances), this end is a
/// fixed absolute instant for the lifetime of the running job, which is what
/// lets the incremental calendar keep breakpoints across reacts.
fn canonical_completions(ctx: &SchedulerContext<'_>) -> Vec<(u64, f64, f64)> {
    ctx.canonical_completions()
}

/// Conservative backfilling with a persistent reservation calendar.
///
/// Every queued job holds a durable reservation; arrivals are placed
/// incrementally, completions release capacity and trigger a compression
/// pass that slides reservations earlier (in arrival order, never violating
/// another job's promise) and starts the ones that become feasible now. See
/// the module docs for the full semantics, and [`ConservativeOracle`] for
/// the exhaustive twin it is tested against. The pre-calendar
/// replan-per-react policy survives as
/// [`crate::backfill::ReplanConservative`] (`conservative-replan`).
#[derive(Debug, Clone, Default)]
pub struct ConservativeBackfill {
    cal: Calendar,
    /// Reservations by job id.
    slots: HashMap<u64, Slot>,
    /// Reservations by `(start bits, id)` — times are non-negative, so the
    /// bit order is the float order. This is what lets the compression walk
    /// enumerate exactly the reservations at or before the reclaim horizon
    /// instead of sweeping the whole backlog.
    slot_index: BTreeSet<(u64, u64)>,
    /// Jobs we believe are running: id → (canonical end, procs).
    running: HashMap<u64, (f64, f64)>,
    /// Minimum canonical end over `running` (∞ when empty); once `now` passes
    /// it some job has outlived its estimate and the committed base is stale.
    min_running_end: f64,
    /// Per-width parking bounds for probe-budget-exhausted placements.
    park: Park,
    /// Monotone upper bound on the duration of every job placed since the
    /// last rebuild (and therefore on every queued job's duration): the
    /// clamp horizon for the walk's dip scans.
    dur_bound: f64,
    /// Whether the calendar reflects a committed state at all.
    anchored: bool,
}

impl ConservativeBackfill {
    /// Does this react invalidate the committed base outright?
    fn needs_rebuild(&self, ctx: &SchedulerContext<'_>, event: SchedulerEvent) -> bool {
        if !self.anchored {
            return true;
        }
        match event {
            SchedulerEvent::Start
            | SchedulerEvent::JobsKilled { .. }
            | SchedulerEvent::OutageAnnounced { .. }
            | SchedulerEvent::OutageStarted { .. }
            | SchedulerEvent::OutageEnded { .. }
            | SchedulerEvent::ReservationsChanged => true,
            _ => {
                // A running job past its estimated end drifts with the clock.
                self.min_running_end < ctx.now
            }
        }
    }

    /// Full rebuild: recommit the base from the running set's canonical ends
    /// and re-reserve every queued job in arrival order, starting those whose
    /// earliest slot is `now`. This is the seed-style exhaustive sweep, kept
    /// for the rare events (outages, kills, overdue estimates) that
    /// invalidate the calendar wholesale — and it re-reserves displaced jobs
    /// after an outage kill in one pass.
    fn rebuild(&mut self, ctx: &SchedulerContext<'_>) -> Vec<Decision> {
        self.slots.clear();
        self.slot_index.clear();
        self.running.clear();
        self.min_running_end = f64::INFINITY;
        self.dur_bound = 0.0;
        self.cal.reset(ctx.now, ctx.free_capacity());
        let completions = canonical_completions(ctx);
        self.park.rebase(ctx.now, ctx.free_capacity(), &completions);
        for (id, end, procs) in completions {
            self.cal.add_range(end, f64::INFINITY, procs);
            self.running.insert(id, (end, procs));
            self.min_running_end = self.min_running_end.min(end);
        }
        self.anchored = true;
        let mut out = Vec::new();
        let keys: Vec<_> = ctx.queue.iter_keys().copied().collect();
        for q in keys {
            self.place(ctx, q.id, q.procs as f64, q.estimate.max(1.0), &mut out);
        }
        out
    }

    /// Place one job at its earliest feasible slot: start it when that slot
    /// is `now`, otherwise commit a reservation.
    fn place(
        &mut self,
        ctx: &SchedulerContext<'_>,
        id: u64,
        procs: f64,
        duration: f64,
        out: &mut Vec<Decision>,
    ) {
        self.dur_bound = self.dur_bound.max(duration);
        let start = match self
            .cal
            .earliest_start_capped(ctx.now, procs, duration, PLACEMENT_PROBES)
        {
            Some(start) => start,
            // Budget exhausted: park at the width's tail bound, where the
            // window is free by the Park invariant.
            None => self
                .park
                .time_for(procs)
                .map(|t| t.max(ctx.now))
                .unwrap_or(f64::INFINITY),
        };
        if start == ctx.now {
            let m = self.cal.add_range(ctx.now, ctx.now + duration, -procs);
            self.park.note(ctx.now + duration, m);
            self.running.insert(id, (ctx.now + duration, procs));
            self.min_running_end = self.min_running_end.min(ctx.now + duration);
            out.push(Decision::start(id));
        } else if start.is_finite() {
            let m = self.cal.add_range(start, start + duration, -procs);
            self.park.note(start + duration, m);
            self.commit(
                id,
                Slot {
                    start,
                    end: start + duration,
                    procs,
                },
            );
        } else {
            // Wider than the machine currently is: no feasible slot. Hold the
            // job without occupancy; a rebuild re-places it when capacity
            // returns.
            self.commit(
                id,
                Slot {
                    start: f64::INFINITY,
                    end: f64::INFINITY,
                    procs,
                },
            );
        }
    }

    /// Record a reservation in both the by-id map and the by-start index.
    fn commit(&mut self, id: u64, slot: Slot) {
        self.slot_index.insert((slot.start.to_bits(), id));
        self.slots.insert(id, slot);
    }

    /// Drop a reservation from both views.
    fn uncommit(&mut self, id: u64, slot: &Slot) {
        self.slot_index.remove(&(slot.start.to_bits(), id));
        self.slots.remove(&id);
    }

    /// Release tracked running jobs that are no longer in the context's
    /// running set (they completed; the engine already freed their
    /// processors). Returns `false` when the running set contains a job we
    /// never tracked (state went inconsistent, rebuild).
    fn reconcile(&mut self, ctx: &SchedulerContext<'_>) -> bool {
        if ctx.running.len() != self.running.len() {
            let mut completed: Vec<u64> = self
                .running
                .keys()
                .copied()
                .filter(|id| !ctx.running.iter().any(|r| r.job.id == *id))
                .collect();
            completed.sort_unstable();
            for id in completed {
                let (end, procs) = self.running.remove(&id).expect("tracked");
                self.cal.add_range(ctx.now, end, procs);
                if end == self.min_running_end {
                    self.min_running_end = self
                        .running
                        .values()
                        .fold(f64::INFINITY, |m, &(e, _)| m.min(e));
                }
            }
        }
        ctx.running.len() == self.running.len()
            && ctx
                .running
                .iter()
                .all(|r| self.running.contains_key(&r.job.id))
    }

    /// Start a reserved job at `now`: lift its far occupancy, occupy
    /// `[now, now+d)` and emit the decision.
    fn start_reserved(
        &mut self,
        ctx: &SchedulerContext<'_>,
        id: u64,
        slot: &Slot,
        duration: f64,
        out: &mut Vec<Decision>,
    ) {
        if slot.start.is_finite() {
            self.cal
                .add_range(slot.start.max(ctx.now), slot.end, slot.procs);
        }
        let m = self.cal.add_range(ctx.now, ctx.now + duration, -slot.procs);
        self.park.note(ctx.now + duration, m);
        self.running.insert(id, (ctx.now + duration, slot.procs));
        self.min_running_end = self.min_running_end.min(ctx.now + duration);
        out.push(Decision::start(id));
    }

    /// The due pass of the compression walk: re-place, in `(start, id)`
    /// order, every reservation whose committed start has been reached. A
    /// due reservation's window is feasible by commitment (capacity is only
    /// ever promised around it, never taken from it), so lifting its own
    /// occupancy and re-placing it from `now` starts it; the re-place form
    /// is kept rather than an unconditional start so clock drift past a
    /// missed slot degrades to a later reservation instead of an overdraft.
    fn due_pass(&mut self, ctx: &SchedulerContext<'_>, out: &mut Vec<Decision>) {
        loop {
            let next = self
                .slot_index
                .range(..=(ctx.now.to_bits(), u64::MAX))
                .next()
                .copied();
            let Some((_, id)) = next else { break };
            let slot = self.slots.get(&id).copied().expect("indexed slot");
            self.uncommit(id, &slot);
            let Some(q) = ctx.queue.get(id) else { continue };
            let duration = q.job.estimate.max(1.0);
            if slot.start.is_finite() {
                self.cal
                    .add_range(slot.start.max(ctx.now), slot.end, slot.procs);
            }
            let start = match self.cal.earliest_start_capped(
                ctx.now,
                slot.procs,
                duration,
                PLACEMENT_PROBES,
            ) {
                Some(start) => start,
                None => self
                    .park
                    .time_for(slot.procs)
                    .map(|t| t.max(ctx.now))
                    .unwrap_or(f64::INFINITY),
            };
            if start == ctx.now {
                let m = self.cal.add_range(ctx.now, ctx.now + duration, -slot.procs);
                self.park.note(ctx.now + duration, m);
                self.running.insert(id, (ctx.now + duration, slot.procs));
                self.min_running_end = self.min_running_end.min(ctx.now + duration);
                out.push(Decision::start(id));
            } else if start.is_finite() {
                // `start > now` here, so the loop cannot revisit this slot.
                let m = self.cal.add_range(start, start + duration, -slot.procs);
                self.park.note(start + duration, m);
                self.commit(
                    id,
                    Slot {
                        start,
                        end: start + duration,
                        procs: slot.procs,
                    },
                );
            } else {
                self.commit(
                    id,
                    Slot {
                        start: f64::INFINITY,
                        end: f64::INFINITY,
                        procs: slot.procs,
                    },
                );
            }
        }
    }

    /// The compression walk run after completions and timers: due pass, then
    /// starter pass (see the module docs for the lazy-compression semantics).
    fn walk(&mut self, ctx: &SchedulerContext<'_>, out: &mut Vec<Decision>) {
        self.due_pass(ctx, out);
        // Starter pass: stream plausible candidates off the backlog index in
        // arrival order, re-test each against the fresh dip profile, start
        // exact fits. Each start changes the profile in both directions
        // (consumes `[now, now+d)`, releases the far slot), so the scan is
        // rebound before the next candidate is pulled.
        let horizon = ctx.now + self.dur_bound;
        let mut dips = self.cal.dip_times_upto(ctx.now, horizon);
        let mut stairs = stairs_of(&dips, ctx.now);
        if !stairs.is_empty() {
            let mut scan = ctx.queue.staircase_scan(&stairs);
            let mut dirty = false;
            loop {
                if dirty {
                    dips = self.cal.dip_times_upto(ctx.now, horizon);
                    stairs = stairs_of(&dips, ctx.now);
                    if stairs.is_empty() {
                        break;
                    }
                    scan.rebind(&stairs);
                    dirty = false;
                }
                let Some(q) = scan.next() else { break };
                if self.running.contains_key(&q.id) {
                    continue;
                }
                let Some(slot) = self.slots.get(&q.id).copied() else {
                    continue;
                };
                let p = q.procs as usize;
                let duration = q.estimate.max(1.0);
                if p > dips.len() || ctx.now + duration > dips[p - 1] {
                    continue;
                }
                self.uncommit(q.id, &slot);
                self.start_reserved(ctx, q.id, &slot, duration, out);
                dirty = true;
            }
        }
    }

    /// Arm the engine's timer for the earliest committed reservation start,
    /// so a due slot fires even when no completion coincides with it. The
    /// engine coalesces repeated requests for the same instant.
    fn arm_wakeup(&self, out: &mut Vec<Decision>) {
        if let Some(&(bits, _)) = self.slot_index.iter().next() {
            let at = f64::from_bits(bits);
            if at.is_finite() {
                out.push(Decision::Wakeup { at });
            }
        }
    }
}

impl Scheduler for ConservativeBackfill {
    fn name(&self) -> &str {
        "conservative"
    }

    fn react(&mut self, ctx: &SchedulerContext<'_>, event: SchedulerEvent) -> Vec<Decision> {
        let mut out = self.react_inner(ctx, event);
        self.arm_wakeup(&mut out);
        out
    }
}

impl ConservativeBackfill {
    fn react_inner(&mut self, ctx: &SchedulerContext<'_>, event: SchedulerEvent) -> Vec<Decision> {
        if self.needs_rebuild(ctx, event) {
            return self.rebuild(ctx);
        }
        if !self.reconcile(ctx) {
            return self.rebuild(ctx);
        }
        self.cal.advance_to(ctx.now);
        let mut out = Vec::new();
        if let SchedulerEvent::JobArrived { job_id } = event {
            // An arrival only ever consumes capacity: the new job is placed
            // once and nothing else can move, so no compression walk runs.
            if !self.slots.contains_key(&job_id) && !self.running.contains_key(&job_id) {
                if let Some(q) = ctx.queue.get(job_id) {
                    self.place(
                        ctx,
                        job_id,
                        q.job.procs as f64,
                        q.job.estimate.max(1.0),
                        &mut out,
                    );
                }
            }
        }
        // Every queued job must now hold a slot or have just started; any
        // other shape (e.g. a killed job silently requeued) means the state
        // no longer matches the queue.
        if self.slots.len() + out.len() != ctx.queue.len() {
            // The rebuild re-derives every decision, including the arrival's.
            return self.rebuild(ctx);
        }
        if matches!(
            event,
            SchedulerEvent::JobCompleted { .. }
                | SchedulerEvent::CompletionBatch { .. }
                | SchedulerEvent::Timer
        ) {
            self.walk(ctx, &mut out);
        }
        // Released occupancies leave redundant steps behind; compact once
        // the residue dominates the live breakpoints.
        let live = 2 * (self.slots.len() + self.running.len()) + 16;
        if self.cal.len() > 2 * live {
            self.cal.compact();
        }
        out
    }
}

/// The exhaustive twin of [`ConservativeBackfill`]: identical persistent
/// promise semantics, but the profile is rebuilt from scratch on every react
/// (anchor + canonical completions + every committed slot, applied in
/// arrival order) and the candidate set comes from a full queue scan instead
/// of the backlog index. It is deliberately O(backlog · profile) per react —
/// the point is to be an independently-auditable specification that the
/// incremental implementation must match bit for bit.
#[derive(Debug, Clone, Default)]
pub struct ConservativeOracle {
    slots: HashMap<u64, Slot>,
    running: HashMap<u64, (f64, f64)>,
    min_running_end: f64,
    park: Park,
    anchored: bool,
}

impl ConservativeOracle {
    /// Rebuild the full step function from scratch: base plus every
    /// committed occupancy, clipped to `[now, ∞)`.
    fn profile(&self, ctx: &SchedulerContext<'_>) -> StepVec {
        let mut p = StepVec::anchored(ctx.now, ctx.free_capacity());
        for (_, end, procs) in canonical_completions(ctx) {
            p.add_range(end, f64::INFINITY, procs);
        }
        // The engine counts a due-but-unstarted reservation's processors as
        // free; its committed occupancy below re-subtracts them, so the
        // function matches the incremental calendar exactly.
        for q in ctx.queue.iter_keys() {
            if let Some(s) = self.slots.get(&q.id) {
                if s.start.is_finite() {
                    p.add_range(s.start.max(ctx.now), s.end, -s.procs);
                }
            }
        }
        p
    }

    fn needs_rebuild(&self, ctx: &SchedulerContext<'_>, event: SchedulerEvent) -> bool {
        if !self.anchored {
            return true;
        }
        match event {
            SchedulerEvent::Start
            | SchedulerEvent::JobsKilled { .. }
            | SchedulerEvent::OutageAnnounced { .. }
            | SchedulerEvent::OutageStarted { .. }
            | SchedulerEvent::OutageEnded { .. }
            | SchedulerEvent::ReservationsChanged => true,
            _ => self.min_running_end < ctx.now,
        }
    }

    fn track_start(&mut self, id: u64, now: f64, duration: f64, procs: f64) {
        self.running.insert(id, (now + duration, procs));
        self.min_running_end = self.min_running_end.min(now + duration);
    }

    fn place(
        &mut self,
        p: &mut StepVec,
        now: f64,
        id: u64,
        procs: f64,
        duration: f64,
        out: &mut Vec<Decision>,
    ) {
        let start = match p.earliest_start_capped(now, procs, duration, PLACEMENT_PROBES) {
            Some(start) => start,
            None => self
                .park
                .time_for(procs)
                .map(|t| t.max(now))
                .unwrap_or(f64::INFINITY),
        };
        if start == now {
            let m = p.add_range(now, now + duration, -procs);
            self.park.note(now + duration, m);
            self.track_start(id, now, duration, procs);
            out.push(Decision::start(id));
        } else {
            if start.is_finite() {
                let m = p.add_range(start, start + duration, -procs);
                self.park.note(start + duration, m);
            }
            self.slots.insert(
                id,
                Slot {
                    start,
                    end: start + duration,
                    procs,
                },
            );
        }
    }

    fn rebuild(&mut self, ctx: &SchedulerContext<'_>) -> Vec<Decision> {
        self.slots.clear();
        self.running.clear();
        self.min_running_end = f64::INFINITY;
        let completions = canonical_completions(ctx);
        self.park.rebase(ctx.now, ctx.free_capacity(), &completions);
        for (id, end, procs) in completions {
            self.running.insert(id, (end, procs));
            self.min_running_end = self.min_running_end.min(end);
        }
        self.anchored = true;
        let mut p = self.profile(ctx);
        let mut out = Vec::new();
        let keys: Vec<_> = ctx.queue.iter_keys().copied().collect();
        for q in keys {
            self.place(
                &mut p,
                ctx.now,
                q.id,
                q.procs as f64,
                q.estimate.max(1.0),
                &mut out,
            );
        }
        out
    }

    /// The due pass, specified naively: repeatedly take the reservation with
    /// the smallest `(start, id)` at or before `now` (full scan of the slot
    /// map), lift it, re-place it. Rule-for-rule the same as
    /// [`ConservativeBackfill::due_pass`], which runs off its by-start index.
    fn due_pass(&mut self, ctx: &SchedulerContext<'_>, p: &mut StepVec, out: &mut Vec<Decision>) {
        loop {
            let next = self
                .slots
                .iter()
                .filter(|(_, s)| s.start <= ctx.now)
                .map(|(id, s)| (s.start.to_bits(), *id))
                .min();
            let Some((_, id)) = next else { break };
            let slot = self.slots.remove(&id).expect("scanned slot");
            let Some(q) = ctx.queue.get(id) else { continue };
            let duration = q.job.estimate.max(1.0);
            if slot.start.is_finite() {
                p.add_range(slot.start.max(ctx.now), slot.end, slot.procs);
            }
            let start =
                match p.earliest_start_capped(ctx.now, slot.procs, duration, PLACEMENT_PROBES) {
                    Some(start) => start,
                    None => self
                        .park
                        .time_for(slot.procs)
                        .map(|t| t.max(ctx.now))
                        .unwrap_or(f64::INFINITY),
                };
            if start == ctx.now {
                let m = p.add_range(ctx.now, ctx.now + duration, -slot.procs);
                self.park.note(ctx.now + duration, m);
                self.track_start(id, ctx.now, duration, slot.procs);
                out.push(Decision::start(id));
            } else {
                if start.is_finite() {
                    let m = p.add_range(start, start + duration, -slot.procs);
                    self.park.note(start + duration, m);
                }
                self.slots.insert(
                    id,
                    Slot {
                        start,
                        end: start + duration,
                        procs: slot.procs,
                    },
                );
            }
        }
    }

    /// The compression walk, specified naively: due pass, then one
    /// arrival-order sweep of the whole queue testing every job against a
    /// freshly recomputed dip profile (`now + d ≤ dip(p)` — exactly the
    /// incremental walk's test).
    fn walk(&mut self, ctx: &SchedulerContext<'_>, p: &mut StepVec, out: &mut Vec<Decision>) {
        self.due_pass(ctx, p, out);
        let keys: Vec<_> = ctx.queue.iter_keys().copied().collect();
        for q in keys {
            if self.running.contains_key(&q.id) {
                continue;
            }
            let Some(slot) = self.slots.get(&q.id).copied() else {
                continue;
            };
            let dips = p.dip_times(ctx.now);
            let width = q.procs as usize;
            let duration = q.estimate.max(1.0);
            if width > dips.len() || ctx.now + duration > dips[width - 1] {
                continue;
            }
            self.slots.remove(&q.id);
            if slot.start.is_finite() {
                p.add_range(slot.start.max(ctx.now), slot.end, slot.procs);
            }
            let m = p.add_range(ctx.now, ctx.now + duration, -slot.procs);
            self.park.note(ctx.now + duration, m);
            self.track_start(q.id, ctx.now, duration, slot.procs);
            out.push(Decision::start(q.id));
        }
    }

    /// Mirror of [`ConservativeBackfill::arm_wakeup`], off the slot map.
    fn arm_wakeup(&self, out: &mut Vec<Decision>) {
        if let Some(bits) = self.slots.values().map(|s| s.start.to_bits()).min() {
            let at = f64::from_bits(bits);
            if at.is_finite() {
                out.push(Decision::Wakeup { at });
            }
        }
    }
}

impl Scheduler for ConservativeOracle {
    fn name(&self) -> &str {
        "conservative-oracle"
    }

    fn react(&mut self, ctx: &SchedulerContext<'_>, event: SchedulerEvent) -> Vec<Decision> {
        let mut out = self.react_inner(ctx, event);
        self.arm_wakeup(&mut out);
        out
    }
}

impl ConservativeOracle {
    fn react_inner(&mut self, ctx: &SchedulerContext<'_>, event: SchedulerEvent) -> Vec<Decision> {
        if self.needs_rebuild(ctx, event) {
            return self.rebuild(ctx);
        }
        // Reconcile completions: forget them (the from-scratch profile below
        // reflects the release automatically).
        let mut completed: Vec<u64> = self
            .running
            .keys()
            .copied()
            .filter(|id| !ctx.running.iter().any(|r| r.job.id == *id))
            .collect();
        completed.sort_unstable();
        for id in &completed {
            self.running.remove(id);
        }
        self.min_running_end = self
            .running
            .values()
            .fold(f64::INFINITY, |m, &(e, _)| m.min(e));
        if !ctx
            .running
            .iter()
            .all(|r| self.running.contains_key(&r.job.id))
        {
            return self.rebuild(ctx);
        }
        let mut p = self.profile(ctx);
        let mut out = Vec::new();
        if let SchedulerEvent::JobArrived { job_id } = event {
            if !self.slots.contains_key(&job_id) && !self.running.contains_key(&job_id) {
                if let Some(q) = ctx.queue.get(job_id) {
                    self.place(
                        &mut p,
                        ctx.now,
                        job_id,
                        q.job.procs as f64,
                        q.job.estimate.max(1.0),
                        &mut out,
                    );
                }
            }
        }
        if self.slots.len() + out.len() != ctx.queue.len() {
            return self.rebuild(ctx);
        }
        if matches!(
            event,
            SchedulerEvent::JobCompleted { .. }
                | SchedulerEvent::CompletionBatch { .. }
                | SchedulerEvent::Timer
        ) {
            self.walk(ctx, &mut p, &mut out);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psbench_sim::{SimConfig, SimJob, Simulation};

    fn jobs(specs: &[(u64, f64, f64, u32)]) -> Vec<SimJob> {
        specs
            .iter()
            .map(|&(id, submit, rt, procs)| SimJob::rigid(id, submit, rt, procs))
            .collect()
    }

    #[test]
    fn stepvec_basics() {
        let mut p = StepVec::anchored(0.0, 16.0);
        p.add_range(100.0, f64::INFINITY, 48.0);
        assert_eq!(p.capacity_at(0.0), 16.0);
        assert_eq!(p.capacity_at(99.0), 16.0);
        assert_eq!(p.capacity_at(100.0), 64.0);
        p.add_range(10.0, 50.0, -16.0);
        assert_eq!(p.capacity_at(10.0), 0.0);
        assert_eq!(p.capacity_at(49.0), 0.0);
        assert_eq!(p.capacity_at(50.0), 16.0);
        assert_eq!(p.earliest_start(0.0, 8.0, 10.0), 0.0);
        assert_eq!(p.earliest_start(0.0, 8.0, 11.0), 50.0);
        assert_eq!(p.earliest_start(0.0, 64.0, 5.0), 100.0);
        assert_eq!(p.earliest_start(0.0, 65.0, 5.0), f64::INFINITY);
    }

    #[test]
    fn calendar_matches_stepvec_on_random_ops() {
        // Differential test: the chunked calendar and the flat reference must
        // agree exactly on capacities and earliest-start searches across a
        // deterministic pseudo-random op mix dense enough to force chunk
        // splits, offsets and partial-range updates.
        let mut seed = 0x9e3779b97f4a7c15u64;
        let mut rng = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        let mut cal = Calendar::default();
        cal.reset(0.0, 64.0);
        let mut reference = StepVec::anchored(0.0, 64.0);
        let mut occupied: Vec<(f64, f64, f64)> = Vec::new();
        for round in 0..4000 {
            let r = rng();
            match r % 5 {
                0 | 1 => {
                    // Occupy a random feasible window.
                    let procs = (r / 7 % 16 + 1) as f64;
                    let dur = (r / 11 % 500 + 1) as f64;
                    let from = (r / 13 % 2000) as f64;
                    let s_cal = cal.earliest_start(from, procs, dur);
                    let s_ref = reference.earliest_start(from, procs, dur);
                    assert_eq!(s_cal, s_ref, "round {round} search");
                    if s_cal.is_finite() {
                        cal.add_range(s_cal, s_cal + dur, -procs);
                        reference.add_range(s_cal, s_cal + dur, -procs);
                        occupied.push((s_cal, s_cal + dur, procs));
                    }
                }
                2 => {
                    // Release a previously occupied window.
                    if !occupied.is_empty() {
                        let i = (r as usize / 3) % occupied.len();
                        let (a, b, procs) = occupied.swap_remove(i);
                        cal.add_range(a, b, procs);
                        reference.add_range(a, b, procs);
                    }
                }
                3 => {
                    let t = (r / 17 % 3000) as f64;
                    assert_eq!(
                        cal.capacity_at(t),
                        reference.capacity_at(t),
                        "round {round} cap"
                    );
                }
                _ => {
                    if r % 97 == 0 {
                        cal.compact();
                    }
                    let procs = (r / 7 % 64 + 1) as f64;
                    let dur = (r / 11 % 900 + 1) as f64;
                    let s_cal = cal.earliest_start(0.0, procs, dur);
                    let s_ref = reference.earliest_start(0.0, procs, dur);
                    assert_eq!(s_cal, s_ref, "round {round} wide search");
                }
            }
        }
        assert!(cal.len() > 2 * CHUNK, "test must exercise chunk splits");
    }

    #[test]
    fn calendar_advance_preserves_function() {
        let mut cal = Calendar::default();
        cal.reset(0.0, 32.0);
        cal.add_range(10.0, 20.0, -8.0);
        cal.add_range(50.0, f64::INFINITY, 16.0);
        cal.advance_to(15.0);
        assert_eq!(cal.capacity_at(15.0), 24.0);
        assert_eq!(cal.capacity_at(20.0), 32.0);
        assert_eq!(cal.capacity_at(50.0), 48.0);
        // Anchor semantics: instants before the anchor read the anchor.
        assert_eq!(cal.capacity_at(0.0), 24.0);
    }

    #[test]
    fn conservative_backfills_when_harmless() {
        let js = jobs(&[(1, 0.0, 100.0, 48), (2, 1.0, 200.0, 64), (3, 2.0, 10.0, 8)]);
        let result =
            Simulation::new(SimConfig::new(64), js).run(&mut ConservativeBackfill::default());
        let j3 = result.finished.iter().find(|f| f.id == 3).unwrap();
        assert_eq!(j3.start, 2.0);
    }

    #[test]
    fn conservative_never_delays_earlier_job() {
        let js = jobs(&[
            (1, 0.0, 100.0, 60),
            (2, 1.0, 200.0, 64),
            (3, 2.0, 1000.0, 4),
        ]);
        let result =
            Simulation::new(SimConfig::new(64), js).run(&mut ConservativeBackfill::default());
        let j2 = result.finished.iter().find(|f| f.id == 2).unwrap();
        assert_eq!(j2.start, 100.0);
    }

    #[test]
    fn compression_slides_reservation_earlier_on_early_completion() {
        // Job 1 runs 40s but is estimated at 400s; job 2 needs the whole
        // machine and is reserved behind the estimate. When job 1 finishes
        // early the compression pass must start job 2 right away.
        let js = vec![
            SimJob::rigid(1, 0.0, 40.0, 32).with_estimate(400.0),
            SimJob::rigid(2, 1.0, 50.0, 64).with_estimate(50.0),
        ];
        let result =
            Simulation::new(SimConfig::new(64), js).run(&mut ConservativeBackfill::default());
        let j2 = result.finished.iter().find(|f| f.id == 2).unwrap();
        assert_eq!(
            j2.start, 40.0,
            "early completion must compress the calendar"
        );
    }

    #[test]
    fn oracle_and_calendar_agree_on_small_workloads() {
        for seed in 0..20u64 {
            let js: Vec<SimJob> = (0..60)
                .map(|i| {
                    let r = seed * 1_000_003 + i * 7919;
                    SimJob::rigid(
                        i + 1,
                        (r % 500) as f64,
                        10.0 + (r % 300) as f64,
                        1 + (r % 60) as u32,
                    )
                    .with_estimate(10.0 + (r % 300) as f64 + (r % 5) as f64 * 60.0)
                })
                .collect();
            let a = Simulation::new(SimConfig::new(64), js.clone())
                .run(&mut ConservativeBackfill::default());
            let b = Simulation::new(SimConfig::new(64), js).run(&mut ConservativeOracle::default());
            assert_eq!(a.finished.len(), b.finished.len(), "seed {seed}");
            for (x, y) in a.finished.iter().zip(b.finished.iter()) {
                assert_eq!(x.id, y.id, "seed {seed}");
                assert_eq!(
                    x.start.to_bits(),
                    y.start.to_bits(),
                    "seed {seed} id {}",
                    x.id
                );
                assert_eq!(x.end.to_bits(), y.end.to_bits(), "seed {seed} id {}", x.id);
            }
        }
    }

    #[test]
    fn all_jobs_complete_and_no_rejections() {
        let js: Vec<SimJob> = (0..200)
            .map(|i| {
                SimJob::rigid(
                    i + 1,
                    (i * 15) as f64,
                    60.0 + (i % 9) as f64 * 150.0,
                    1 + (i % 50) as u32,
                )
                .with_estimate(60.0 + (i % 9) as f64 * 300.0)
            })
            .collect();
        for sched in [
            &mut ConservativeBackfill::default() as &mut dyn Scheduler,
            &mut ConservativeOracle::default(),
        ] {
            let result = Simulation::new(SimConfig::new(64), js.clone()).run(sched);
            assert_eq!(result.finished.len(), 200, "{}", sched.name());
            assert_eq!(result.rejected_decisions, 0, "{}", sched.name());
        }
    }
}
