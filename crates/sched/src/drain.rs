//! Outage- and reservation-aware scheduling.
//!
//! Section 2.2 argues that outage information "is often available to the job
//! scheduler so that jobs can be scheduled around the outages, or such that the
//! system is drained up to the outage"; Section 3.1 asks local schedulers to honour
//! advance reservations so meta-schedulers can co-allocate. This policy wraps EASY
//! backfilling with both behaviours: it refuses to start jobs whose estimated
//! completion would collide with an announced capacity loss (outage or reservation)
//! unless enough capacity remains during the overlap.

use crate::backfill::EasyBackfill;
use psbench_sim::{Decision, Scheduler, SchedulerContext, SchedulerEvent};

/// A known future capacity reduction (announced outage).
#[derive(Debug, Clone, Copy, PartialEq)]
struct CapacityDrop {
    start: f64,
    end: f64,
    procs: u32,
}

/// EASY backfilling that drains before announced outages and schedules around
/// advance reservations.
#[derive(Debug, Clone, Default)]
pub struct DrainingEasy {
    announced: Vec<CapacityDrop>,
    inner: EasyBackfill,
}

impl DrainingEasy {
    /// New draining scheduler with no announced outages yet.
    pub fn new() -> Self {
        DrainingEasy::default()
    }

    /// Capacity that is promised away (to outages or reservations) during
    /// `[from, to)`, at its worst instant.
    ///
    /// Outage drops and reservations are both step functions of time, so
    /// their combined worst instant is found by evaluating the *sum* at every
    /// edge inside the window — not by adding the separate maxima, which
    /// overstates the loss whenever the outage and the reservation windows
    /// never coincide (and made this policy refuse backfills that were
    /// perfectly safe).
    fn promised_away(&self, ctx: &SchedulerContext<'_>, from: f64, to: f64) -> f64 {
        let mut points: Vec<f64> = vec![from];
        for d in &self.announced {
            if d.start < to && from < d.end {
                if d.start > from {
                    points.push(d.start);
                }
                if d.end < to {
                    points.push(d.end);
                }
            }
        }
        for r in &ctx.cluster.reservations {
            if r.overlaps(from, to) {
                if r.start > from {
                    points.push(r.start);
                }
                if r.end < to {
                    points.push(r.end);
                }
            }
        }
        let mut worst = 0u32;
        for &t in &points {
            let outage: u32 = self
                .announced
                .iter()
                .filter(|d| t >= d.start && t < d.end)
                .map(|d| d.procs)
                .sum();
            worst = worst.max(outage + ctx.cluster.reserved_at(t));
        }
        worst as f64
    }

    /// Would starting `procs` processors now, for `duration` seconds, collide with a
    /// future capacity drop? The test is conservative: during the overlap the
    /// machine must still hold the already-running load plus this job plus the drop.
    fn collides(&self, ctx: &SchedulerContext<'_>, procs: f64, duration: f64) -> bool {
        let from = ctx.now;
        let to = ctx.now + duration;
        let promised = self.promised_away(ctx, from, to);
        if promised <= 0.0 {
            return false;
        }
        // Load that will still be there during the drop: assume currently running
        // jobs may still be running (conservative), plus this candidate.
        let used = ctx.used_capacity();
        used + procs + promised > ctx.cluster.available_procs() as f64 + 1e-9
    }
}

impl Scheduler for DrainingEasy {
    fn name(&self) -> &str {
        "draining-easy"
    }

    fn react(&mut self, ctx: &SchedulerContext<'_>, event: SchedulerEvent) -> Vec<Decision> {
        match event {
            SchedulerEvent::OutageAnnounced { start, end, procs } => {
                self.announced.push(CapacityDrop { start, end, procs });
            }
            SchedulerEvent::OutageEnded { .. } => {
                // Forget drops that are over.
                let now = ctx.now;
                self.announced.retain(|d| d.end > now);
            }
            _ => {}
        }
        // Ask EASY what it would do, then veto starts that collide with an announced
        // capacity drop or an advance reservation. The inner planner consults
        // the backlog index (and handles batched completion consults), so the
        // wrapper's own cost is O(proposed decisions).
        let proposed = self.inner.react(ctx, event);
        let mut out = Vec::new();
        let mut vetoed = false;
        for d in proposed {
            match d {
                Decision::Start {
                    job_id,
                    procs,
                    share,
                } => {
                    let job = ctx.queue.get(job_id);
                    let keep = match job {
                        Some(q) => {
                            let p = procs.unwrap_or(q.job.procs) as f64 * share;
                            !self.collides(ctx, p, q.job.estimate.max(1.0))
                        }
                        None => false,
                    };
                    if keep {
                        out.push(d);
                    } else {
                        vetoed = true;
                    }
                }
                other => out.push(other),
            }
        }
        if vetoed {
            // The inner planner's caches assume its proposed starts happened;
            // a vetoed start leaves them describing a state that never did.
            self.inner.invalidate();
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backfill::EasyBackfill;
    use psbench_sim::{SimConfig, SimJob, Simulation};
    use psbench_swf::outage::{OutageKind, OutageLog, OutageRecord};

    fn maintenance(announce: i64, start: i64, end: i64, procs: u32) -> OutageLog {
        OutageLog::from_records(vec![OutageRecord {
            outage_id: 0,
            announced_time: Some(announce),
            start_time: start,
            end_time: end,
            kind: OutageKind::Maintenance,
            nodes_affected: Some(procs),
            components: vec![],
        }])
    }

    #[test]
    fn drains_before_announced_full_machine_outage() {
        // A 500-second job arriving shortly before a full-machine maintenance window
        // would be killed by plain EASY (and restart after), but the draining policy
        // holds it until after the outage.
        let outages = maintenance(0, 100, 200, 64);
        let jobs = vec![SimJob::rigid(1, 10.0, 500.0, 32)];
        let easy = Simulation::new(
            SimConfig::new(64).with_outages(outages.clone()),
            jobs.clone(),
        )
        .run(&mut EasyBackfill::default());
        let drain = Simulation::new(SimConfig::new(64).with_outages(outages), jobs)
            .run(&mut DrainingEasy::new());
        // Plain EASY starts it at t=10, loses it to the outage, restarts at 200.
        assert_eq!(easy.kills, 1);
        let easy_job = &easy.finished[0];
        assert_eq!(easy_job.end, 700.0);
        // Draining EASY never wastes the work: no kill, starts at 200, ends at 700.
        assert_eq!(drain.kills, 0);
        let drain_job = &drain.finished[0];
        assert_eq!(drain_job.start, 200.0);
        assert_eq!(drain_job.end, 700.0);
    }

    #[test]
    fn short_jobs_still_run_before_the_outage() {
        // A 50-second job can finish before the maintenance starts, so the draining
        // policy lets it run immediately.
        let outages = maintenance(0, 100, 200, 64);
        let jobs = vec![SimJob::rigid(1, 10.0, 50.0, 32)];
        let result = Simulation::new(SimConfig::new(64).with_outages(outages), jobs)
            .run(&mut DrainingEasy::new());
        assert_eq!(result.kills, 0);
        assert_eq!(result.finished[0].start, 10.0);
        assert_eq!(result.finished[0].end, 60.0);
    }

    #[test]
    fn partial_outage_lets_small_jobs_continue() {
        // Maintenance takes 32 of 64 processors. A 16-proc job can run across the
        // window because enough capacity remains.
        let outages = maintenance(0, 100, 200, 32);
        let jobs = vec![SimJob::rigid(1, 10.0, 500.0, 16)];
        let result = Simulation::new(SimConfig::new(64).with_outages(outages), jobs)
            .run(&mut DrainingEasy::new());
        assert_eq!(result.kills, 0);
        assert_eq!(result.finished[0].start, 10.0);
    }

    #[test]
    fn respects_advance_reservations_in_the_calendar() {
        // A reservation for the whole machine at t in [100, 200): a long job must not
        // start before it, a short one may.
        let long = SimJob::rigid(1, 0.0, 500.0, 64);
        let short = SimJob::rigid(2, 0.0, 50.0, 64);
        // The reservation is placed via the cluster by the engine's owner in metasim;
        // here we emulate it by checking the collide logic directly.
        let cluster = {
            let mut c = psbench_sim::Cluster::new(64);
            c.try_reserve(100.0, 200.0, 64).unwrap();
            c
        };
        let d = DrainingEasy::new();
        let queue = psbench_sim::JobQueue::new();
        let ctx = SchedulerContext {
            now: 0.0,
            cluster: &cluster,
            queue: &queue,
            running: &[],
            used_procs: 0.0,
        };
        assert!(d.collides(&ctx, long.procs as f64, long.estimate));
        assert!(!d.collides(&ctx, short.procs as f64, short.estimate));
    }

    #[test]
    fn disjoint_outage_and_reservation_do_not_stack() {
        // An announced 40-proc outage in [100, 200) and a 40-proc reservation
        // in [300, 400) never coincide, so the worst instant of a job window
        // spanning both is 40 promised-away processors — not 80. Adding the
        // separate maxima (the old computation) vetoed this perfectly safe
        // 16-proc start.
        let cluster = {
            let mut c = psbench_sim::Cluster::new(64);
            c.try_reserve(300.0, 400.0, 40).unwrap();
            c
        };
        let mut d = DrainingEasy::new();
        d.announced.push(CapacityDrop {
            start: 100.0,
            end: 200.0,
            procs: 40,
        });
        let queue = psbench_sim::JobQueue::new();
        let ctx = SchedulerContext {
            now: 0.0,
            cluster: &cluster,
            queue: &queue,
            running: &[],
            used_procs: 0.0,
        };
        assert_eq!(d.promised_away(&ctx, 0.0, 350.0), 40.0);
        assert!(
            !d.collides(&ctx, 16.0, 350.0),
            "disjoint windows must not stack; 16 + 40 fits a 64-proc machine"
        );
        // Overlapping windows still stack to their true combined worst
        // instant: add an outage coinciding with the reservation.
        d.announced.push(CapacityDrop {
            start: 320.0,
            end: 380.0,
            procs: 20,
        });
        assert_eq!(d.promised_away(&ctx, 0.0, 350.0), 60.0);
        assert!(d.collides(&ctx, 16.0, 350.0));
    }

    #[test]
    fn forgets_expired_outages() {
        let outages = maintenance(0, 100, 200, 64);
        let jobs = vec![
            SimJob::rigid(1, 10.0, 500.0, 32),
            SimJob::rigid(2, 300.0, 100.0, 64),
        ];
        let result = Simulation::new(SimConfig::new(64).with_outages(outages), jobs)
            .run(&mut DrainingEasy::new());
        // After the outage ends the drained job runs 200..700; job 2 (whole machine)
        // follows it without being vetoed by the already-expired outage.
        let j2 = result.finished.iter().find(|f| f.id == 2).unwrap();
        assert_eq!(j2.start, 700.0);
        assert_eq!(j2.end, 800.0);
        assert_eq!(result.kills, 0);
    }
}
