//! Predicted-start queries: "when would job J start under policy P?"
//!
//! This is the query surface behind `psbench serve`'s `whatif` command. A
//! probe never touches the live engine: it clones the [`Simulation`], builds
//! a **fresh** policy instance with [`by_name`] (the live policy's internal
//! state stays private to the live session), pokes it once so it plans the
//! inherited backlog, and steps the clone until the target job starts. The
//! clone is discarded afterwards, so a probe is free of side effects by
//! construction — the live session cannot observe that it happened.

use crate::{by_name, UnknownScheduler};
use psbench_sim::{JobState, Simulation};

/// Hard ceiling on probe steps. A finite workload always terminates long
/// before this; the cap only guards against a pathological policy that keeps
/// re-arming timers forever without starting the target job.
pub const PROBE_STEP_CAP: u64 = 50_000_000;

/// The answer to a predicted-start query.
#[derive(Debug, Clone, PartialEq)]
pub struct Prediction {
    /// The job the query was about.
    pub job_id: u64,
    /// The policy the probe ran under.
    pub scheduler: String,
    /// Predicted (or actual, if the job already ran) start time.
    pub start: f64,
    /// Predicted wait: `start` minus the job's (effective) submit time.
    pub wait: f64,
    /// True if the job had already started in the live session, in which case
    /// `start` is its actual start time and no probe was run.
    pub already_started: bool,
}

/// Why a probe could not produce a prediction.
#[derive(Debug, Clone, PartialEq)]
pub enum ProbeError {
    /// The policy name did not resolve; the payload's `Display` lists every
    /// valid scheduler, so callers can surface the full zoo.
    UnknownScheduler(UnknownScheduler),
    /// The job id is not known to the simulation.
    UnknownJob(u64),
    /// The job was cancelled or discarded and will never start.
    NeverStarts(u64),
    /// The probe hit [`PROBE_STEP_CAP`] without the job starting.
    Diverged(u64),
}

impl std::fmt::Display for ProbeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProbeError::UnknownScheduler(e) => write!(f, "{e}"),
            ProbeError::UnknownJob(id) => write!(f, "unknown job {id}"),
            ProbeError::NeverStarts(id) => {
                write!(
                    f,
                    "job {id} was cancelled or discarded and will never start"
                )
            }
            ProbeError::Diverged(id) => {
                write!(
                    f,
                    "probe for job {id} exceeded the step cap without a start"
                )
            }
        }
    }
}

impl std::error::Error for ProbeError {}

impl From<UnknownScheduler> for ProbeError {
    fn from(e: UnknownScheduler) -> Self {
        ProbeError::UnknownScheduler(e)
    }
}

/// The start time recorded for a job that has already been dispatched, if any.
fn started_at(state: &JobState) -> Option<f64> {
    match state {
        JobState::Running { started_at, .. } => Some(*started_at),
        JobState::Finished { start, .. } => Some(*start),
        _ => None,
    }
}

/// The reference instant a wait is measured from.
fn waiting_since(state: &JobState) -> f64 {
    match state {
        JobState::Pending { submit } => *submit,
        JobState::Queued { queued_at } => *queued_at,
        _ => 0.0,
    }
}

/// Predict when `job_id` would start if the cluster ran `scheduler` from this
/// instant on. Answers from a cloned engine under a fresh policy instance;
/// the live `sim` (and its live policy) are never touched.
pub fn probe_start(
    sim: &Simulation,
    job_id: u64,
    scheduler: &str,
) -> Result<Prediction, ProbeError> {
    let state = sim
        .job_state(job_id)
        .ok_or(ProbeError::UnknownJob(job_id))?;
    if let Some(start) = started_at(&state) {
        return Ok(Prediction {
            job_id,
            scheduler: scheduler.to_string(),
            start,
            wait: 0.0,
            already_started: true,
        });
    }
    if matches!(state, JobState::Cancelled | JobState::Discarded) {
        return Err(ProbeError::NeverStarts(job_id));
    }
    let since = waiting_since(&state);
    let mut policy = by_name(scheduler, sim.config().machine_size)?;
    let mut probe = sim.clone();
    // A fresh policy has never seen the inherited backlog: consult it once at
    // the current instant so it plans (and possibly starts jobs) before any
    // event fires.
    probe.poke(policy.as_mut());
    let mut steps: u64 = 0;
    loop {
        if let Some(start) = probe.job_state(job_id).as_ref().and_then(started_at) {
            return Ok(Prediction {
                job_id,
                scheduler: scheduler.to_string(),
                start,
                wait: (start - since).max(0.0),
                already_started: false,
            });
        }
        if !probe.step(policy.as_mut()) {
            return Err(ProbeError::NeverStarts(job_id));
        }
        steps += 1;
        if steps > PROBE_STEP_CAP {
            return Err(ProbeError::Diverged(job_id));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psbench_sim::{SimConfig, SimJob};

    /// A saturated online session: job 1 holds the whole machine, jobs 2 and 3
    /// wait behind it (2 is wide, 3 is narrow and backfillable).
    fn busy_session() -> (Simulation, Box<dyn psbench_sim::Scheduler>) {
        let mut policy = by_name("fcfs", 64).unwrap();
        let mut sim = Simulation::new_online(SimConfig::new(64));
        sim.begin(policy.as_mut());
        sim.submit(SimJob::rigid(1, 0.0, 1000.0, 64)).unwrap();
        sim.submit(SimJob::rigid(2, 10.0, 100.0, 64).with_estimate(100.0))
            .unwrap();
        sim.submit(SimJob::rigid(3, 20.0, 50.0, 8).with_estimate(50.0))
            .unwrap();
        sim.advance_released(policy.as_mut(), 30.0);
        (sim, policy)
    }

    #[test]
    fn probe_predicts_queued_start_under_fcfs() {
        let (sim, _policy) = busy_session();
        let p = probe_start(&sim, 2, "fcfs").unwrap();
        assert!(!p.already_started);
        // FCFS: job 2 starts when job 1 releases the machine at t = 1000.
        assert_eq!(p.start, 1000.0);
        assert_eq!(p.wait, 990.0);
    }

    #[test]
    fn probe_sees_backfill_opportunities_easy_vs_conservative() {
        let (sim, _policy) = busy_session();
        // Job 3 (8 procs, 50 s) cannot start under FCFS until the head of the
        // queue clears, but EASY backfills it immediately: job 1 leaves no
        // free capacity... actually job 1 holds all 64 procs, so nothing can
        // backfill before t = 1000. Both policies agree here.
        let fcfs = probe_start(&sim, 3, "fcfs").unwrap();
        let easy = probe_start(&sim, 3, "easy").unwrap();
        assert!(easy.start <= fcfs.start);
        // Under EASY, job 3 backfills at t = 1000 alongside job 2? No — job 2
        // takes all 64 procs. EASY runs job 3 only after job 2 unless it fits
        // the shadow window; conservative gives it a reservation. Either way
        // a prediction comes back, and the probes never touched the live sim.
        let cons = probe_start(&sim, 3, "conservative").unwrap();
        assert!(cons.start >= sim.now());
    }

    #[test]
    fn probe_reports_already_started_jobs() {
        let (sim, _policy) = busy_session();
        let p = probe_start(&sim, 1, "easy").unwrap();
        assert!(p.already_started);
        assert_eq!(p.start, 0.0);
    }

    #[test]
    fn probe_rejects_unknown_scheduler_with_full_listing() {
        let (sim, _policy) = busy_session();
        let err = probe_start(&sim, 2, "no-such-policy").unwrap_err();
        let msg = err.to_string();
        for name in crate::scheduler_names() {
            assert!(msg.contains(name), "listing should contain {name}");
        }
    }

    #[test]
    fn probe_rejects_unknown_job() {
        let (sim, _policy) = busy_session();
        assert_eq!(
            probe_start(&sim, 777, "fcfs").unwrap_err(),
            ProbeError::UnknownJob(777)
        );
    }

    #[test]
    fn probe_does_not_perturb_live_state() {
        let (sim, mut policy) = busy_session();
        let now = sim.now();
        let queued = sim.queue_len();
        for sched in ["fcfs", "easy", "conservative", "sjf"] {
            probe_start(&sim, 2, sched).unwrap();
        }
        assert_eq!(sim.now(), now);
        assert_eq!(sim.queue_len(), queued);
        // The live session still drains to the same job count.
        let result = sim.finish(policy.as_mut());
        assert_eq!(result.finished.len(), 3);
    }
}
