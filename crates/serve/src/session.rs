//! Crash-safe sessions: a [`Shard`] behind a write-ahead journal.
//!
//! A session serves protocol commands against its shard. Every *mutating*
//! command (`submit`, `cancel`, `advance`, `drain`) is resolved to exact
//! instants, **journaled before it is applied**, and only then executed —
//! so a session killed at any byte can be rebuilt by replaying its journal
//! through the same [`Session::apply_logged`] path the live session used.
//! Queries (`query`, `whatif`, `trace`) never touch the journal.
//!
//! # Journal format
//!
//! One text line per entry. The first line pins the session configuration:
//!
//! ```text
//! open proto=1 scheduler=<name> machine=<procs> mode=<clock-mode>
//! ```
//!
//! Every later line is a checksummed record (see
//! [`psbench_store::journal::frame_record`]) whose payload is a *resolved*
//! command — wall-clock and frontier arithmetic already folded in:
//!
//! ```text
//! c <seq> <crc> submit id=7 time=100 runtime=60 procs=4 estimate=90 user=3
//! c <seq> <crc> cancel id=7 at=b40590cccccccccccd
//! c <seq> <crc> advance to=500
//! c <seq> <crc> drain
//! ```
//!
//! `cancel` carries its wall instant as the exact bit pattern of the `f64`
//! (`at=b<16 hex digits>`), so replay reproduces the engine bit-for-bit.
//!
//! # Sequence numbers
//!
//! Each applied command consumes a strictly increasing `seq`. Clients may
//! pin `seq=` explicitly: re-sending the last applied `seq` replays the
//! cached reply without re-applying (idempotent resubmission after a lost
//! reply); a smaller `seq` is refused as stale. Validation failures are
//! neither journaled nor `seq`-consuming.

use std::io;
use std::path::{Path, PathBuf};

use psbench_sim::JobState;
use psbench_store::{frame_record, parse_record, FsyncPolicy, Journal};

use crate::clock::ClockMode;
use crate::protocol::{parse_command, valid_session_name, Command, Reply, PROTOCOL_VERSION};
use crate::shard::{Shard, ShardConfig};

/// A mutating command with every input already resolved: the exact form that
/// is journaled, applied, and replayed. See the module docs for the wire
/// rendering.
#[derive(Debug, Clone, PartialEq)]
pub enum LoggedCommand {
    /// Submit job `id` at the resolved instant `time`.
    Submit {
        /// Job id, unique within the session.
        id: u64,
        /// Resolved submit instant (integer session seconds).
        time: i64,
        /// Actual runtime in seconds.
        runtime: i64,
        /// Processors requested.
        procs: u32,
        /// Resolved runtime estimate (defaulted to `runtime` if omitted).
        estimate: i64,
        /// Owning user id, if given.
        user: Option<u32>,
    },
    /// Cancel job `id`, first advancing to the resolved wall instant `at`
    /// (`None` in as-fast-as-possible mode).
    Cancel {
        /// Job to cancel.
        id: u64,
        /// Resolved wall instant of the cancel, if the clock is wall-driven.
        at: Option<f64>,
    },
    /// Release session time up to the resolved instant `to`.
    Advance {
        /// Resolved target instant (integer session seconds).
        to: i64,
    },
    /// Run the engine to completion and publish the result.
    Drain,
}

/// Parse one `key=`-prefixed token.
fn field<T: std::str::FromStr>(tok: &str, key: &str) -> Option<T> {
    tok.strip_prefix(key)?.parse().ok()
}

impl LoggedCommand {
    /// Render as a journal payload line (no newline).
    pub fn render(&self) -> String {
        match self {
            LoggedCommand::Submit {
                id,
                time,
                runtime,
                procs,
                estimate,
                user,
            } => {
                let mut s = format!(
                    "submit id={id} time={time} runtime={runtime} procs={procs} estimate={estimate}"
                );
                if let Some(user) = user {
                    s.push_str(&format!(" user={user}"));
                }
                s
            }
            LoggedCommand::Cancel { id, at } => match at {
                None => format!("cancel id={id}"),
                Some(at) => format!("cancel id={id} at=b{:016x}", at.to_bits()),
            },
            LoggedCommand::Advance { to } => format!("advance to={to}"),
            LoggedCommand::Drain => "drain".into(),
        }
    }

    /// Parse a journal payload line. Strict inverse of [`LoggedCommand::render`].
    pub fn parse(payload: &str) -> Option<LoggedCommand> {
        let tokens: Vec<&str> = payload.split(' ').collect();
        match tokens.as_slice() {
            ["submit", id, time, runtime, procs, estimate] => Some(LoggedCommand::Submit {
                id: field(id, "id=")?,
                time: field(time, "time=")?,
                runtime: field(runtime, "runtime=")?,
                procs: field(procs, "procs=")?,
                estimate: field(estimate, "estimate=")?,
                user: None,
            }),
            ["submit", id, time, runtime, procs, estimate, user] => Some(LoggedCommand::Submit {
                id: field(id, "id=")?,
                time: field(time, "time=")?,
                runtime: field(runtime, "runtime=")?,
                procs: field(procs, "procs=")?,
                estimate: field(estimate, "estimate=")?,
                user: Some(field(user, "user=")?),
            }),
            ["cancel", id] => Some(LoggedCommand::Cancel {
                id: field(id, "id=")?,
                at: None,
            }),
            ["cancel", id, at] => {
                let bits = u64::from_str_radix(at.strip_prefix("at=b")?, 16).ok()?;
                Some(LoggedCommand::Cancel {
                    id: field(id, "id=")?,
                    at: Some(f64::from_bits(bits)),
                })
            }
            ["advance", to] => Some(LoggedCommand::Advance {
                to: field(to, "to=")?,
            }),
            ["drain"] => Some(LoggedCommand::Drain),
            _ => None,
        }
    }
}

/// Render the journal's `open` header line for a session configuration.
fn render_open_line(config: &ShardConfig) -> String {
    format!(
        "open proto={PROTOCOL_VERSION} scheduler={} machine={} mode={}",
        config.scheduler, config.machine, config.mode
    )
}

/// Parse the journal's `open` header line back into its fields.
fn parse_open_line(line: &str) -> Option<(String, u32, ClockMode)> {
    let tokens: Vec<&str> = line.split(' ').collect();
    let ["open", proto, scheduler, machine, mode] = tokens.as_slice() else {
        return None;
    };
    let proto: u32 = field(proto, "proto=")?;
    if proto != PROTOCOL_VERSION {
        return None;
    }
    Some((
        field(scheduler, "scheduler=")?,
        field(machine, "machine=")?,
        ClockMode::parse(mode.strip_prefix("mode=")?)?,
    ))
}

/// One session: a protocol front-end over a shard, optionally write-ahead
/// journaled so it survives a crash of the serving process.
pub struct Session {
    shard: Shard,
    name: String,
    journal: Option<Journal>,
    /// Highest applied command sequence number (0 = none yet).
    last_seq: u64,
    /// Reply of the last applied command, replayed verbatim when the client
    /// re-sends the same `seq` after a lost reply.
    last_reply: Option<Reply>,
}

/// Render a [`JobState`] as the `state=…` tail of a `query job` reply.
fn render_state(state: &JobState) -> String {
    match state {
        JobState::Pending { submit } => format!("state=pending submit={submit}"),
        JobState::Queued { queued_at } => format!("state=queued queued_at={queued_at}"),
        JobState::Running {
            started_at,
            predicted_end,
            procs,
        } => format!(
            "state=running started_at={started_at} predicted_end={predicted_end} procs={procs}"
        ),
        JobState::Finished { start, end } => format!("state=finished start={start} end={end}"),
        JobState::Cancelled => "state=cancelled".into(),
        JobState::Discarded => "state=discarded".into(),
    }
}

impl Session {
    /// Wrap an existing shard in an unjournaled session (in-process
    /// embedders and tests; a crash loses the session).
    pub fn new(shard: Shard, name: String) -> Session {
        Session {
            shard,
            name,
            journal: None,
            last_seq: 0,
            last_reply: None,
        }
    }

    /// Build a fresh session, optionally journaled at `journal`. The journal
    /// file must not already hold a session (recover instead).
    pub fn create(
        config: &ShardConfig,
        name: String,
        journal: Option<(&Path, FsyncPolicy)>,
    ) -> Result<Session, String> {
        let shard = Shard::new(config, name.clone()).map_err(|e| e.to_string())?;
        let journal = match journal {
            None => None,
            Some((path, policy)) => {
                let journal = Journal::open(path, policy).map_err(|e| format!("journal: {e}"))?;
                if !journal.is_empty() {
                    return Err(format!(
                        "journal {} already holds a session",
                        path.display()
                    ));
                }
                journal
                    .append_line(&render_open_line(config))
                    .map_err(|e| format!("journal: {e}"))?;
                Some(journal)
            }
        };
        Ok(Session {
            shard,
            name,
            journal,
            last_seq: 0,
            last_reply: None,
        })
    }

    /// Rebuild a session from its journal: validate and truncate the torn
    /// tail, then deterministically replay every logged command through the
    /// same apply path the live session used.
    ///
    /// The session name is the journal's file stem; the configuration comes
    /// from the journal's own `open` line, so a journal is self-contained.
    /// After replay the wall clock re-anchors at the recovery instant (clock
    /// anchors are not state — every journaled instant is already resolved).
    pub fn recover(
        path: &Path,
        policy: FsyncPolicy,
        store_dir: Option<PathBuf>,
    ) -> io::Result<Session> {
        let bad = |msg: String| io::Error::new(io::ErrorKind::InvalidData, msg);
        let name = path
            .file_stem()
            .and_then(|s| s.to_str())
            .filter(|s| valid_session_name(s))
            .ok_or_else(|| bad(format!("bad session journal name {}", path.display())))?
            .to_string();
        let mut index = 0usize;
        let mut prev_seq = 0u64;
        let (journal, lines) = Journal::recover(path, policy, |line| {
            let ok = if index == 0 {
                line.starts_with("open ")
            } else {
                match parse_record(line) {
                    Some((seq, payload)) if seq > prev_seq => {
                        prev_seq = seq;
                        LoggedCommand::parse(&payload).is_some()
                    }
                    _ => false,
                }
            };
            index += 1;
            ok
        })?;
        let Some(open) = lines.first() else {
            return Err(bad(format!("journal {} has no open line", path.display())));
        };
        let (scheduler, machine, mode) = parse_open_line(open).ok_or_else(|| {
            bad(format!(
                "journal {}: bad open line {open:?}",
                path.display()
            ))
        })?;
        let config = ShardConfig {
            scheduler,
            machine,
            mode,
            store_dir,
        };
        let shard = Shard::new(&config, name.clone()).map_err(|e| bad(e.to_string()))?;
        let mut session = Session {
            shard,
            name,
            journal: Some(journal),
            last_seq: 0,
            last_reply: None,
        };
        for line in &lines[1..] {
            // The validator already vetted both layers; unwraps cannot fire.
            let (seq, payload) = parse_record(line).expect("validated record");
            let cmd = LoggedCommand::parse(&payload).expect("validated payload");
            let reply = session.apply_logged(cmd);
            session.last_seq = seq;
            session.last_reply = Some(reply);
        }
        session.shard.reanchor_clock(mode);
        Ok(session)
    }

    /// The session's name (journal file stem for journaled sessions).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Highest applied command sequence number (0 = none yet).
    pub fn last_seq(&self) -> u64 {
        self.last_seq
    }

    /// True once the session has been fully drained.
    pub fn drained(&self) -> bool {
        self.shard.drained()
    }

    /// Path of the session's journal, if it is journaled.
    pub fn journal_path(&self) -> Option<&Path> {
        self.journal.as_ref().map(|j| j.path())
    }

    /// Fsync the journal to disk (no-op for unjournaled sessions). The
    /// durability point for sessions running with `fsync: off`.
    pub fn sync_journal(&self) -> io::Result<()> {
        match &self.journal {
            Some(journal) => journal.sync(),
            None => Ok(()),
        }
    }

    /// Borrow the underlying shard (used by in-process embedders and tests).
    pub fn shard(&self) -> &Shard {
        &self.shard
    }

    /// Apply one already-resolved command to the shard and produce its wire
    /// reply. This is the single execution path shared by live commands and
    /// journal replay — determinism of recovery reduces to determinism of
    /// this function.
    pub fn apply_logged(&mut self, cmd: LoggedCommand) -> Reply {
        match cmd {
            LoggedCommand::Submit {
                id,
                time,
                runtime,
                procs,
                estimate,
                user,
            } => match self
                .shard
                .submit_at(id, time, runtime, procs, estimate, user)
            {
                Ok(t) => Reply::Line(format!("ok submit id={id} time={t}")),
                Err(msg) => Reply::err(format!("submit: {msg}")),
            },
            LoggedCommand::Cancel { id, at } => match self.shard.cancel_at(id, at) {
                Ok(()) => Reply::Line(format!("ok cancel id={id}")),
                Err(msg) => Reply::err(format!("cancel: {msg}")),
            },
            LoggedCommand::Advance { to } => match self.shard.advance_to(to) {
                Ok(now) => Reply::Line(format!("ok advance now={now}")),
                Err(msg) => Reply::err(format!("advance: {msg}")),
            },
            LoggedCommand::Drain => match self.shard.drain() {
                Ok(drained) => {
                    let body = psbench_store::encode_result(&drained.result).into_bytes();
                    let stored = drained
                        .stored
                        .map(|key| format!(" stored={key}"))
                        .unwrap_or_default();
                    Reply::Payload {
                        head: format!(
                            "ok drain bytes={} scheduler={} machine={} finished={}{stored}",
                            body.len(),
                            drained.result.scheduler,
                            drained.result.machine_size,
                            drained.result.finished.len(),
                        ),
                        body,
                    }
                }
                Err(msg) => Reply::err(format!("drain: {msg}")),
            },
        }
    }

    /// Resolve the `seq` of a mutating command. `Ok(seq)` means "apply under
    /// this number"; `Err(reply)` short-circuits (cached replay or stale).
    fn resolve_seq(&self, seq: Option<u64>) -> Result<u64, Reply> {
        match seq {
            None => Ok(self.last_seq + 1),
            Some(0) => Err(Reply::err("seq must be >= 1")),
            Some(s) if s == self.last_seq => match &self.last_reply {
                Some(reply) => Err(reply.clone()),
                None => Err(Reply::err(format!("no cached reply for seq {s}"))),
            },
            Some(s) if s < self.last_seq => Err(Reply::err(format!(
                "stale seq {s}; session already at seq {}",
                self.last_seq
            ))),
            Some(s) => Ok(s),
        }
    }

    /// Journal (if journaled) and apply one resolved command under `seq`,
    /// caching the reply for idempotent resubmission.
    fn commit(&mut self, seq: u64, cmd: LoggedCommand) -> Reply {
        if let Some(journal) = &self.journal {
            if let Err(e) = journal.append_line(&frame_record(seq, &cmd.render())) {
                // Nothing was applied: the command can be retried safely
                // (same seq) once the journal device recovers.
                return Reply::err(format!("journal: {e}"));
            }
        }
        let reply = self.apply_logged(cmd);
        self.last_seq = seq;
        self.last_reply = Some(reply.clone());
        reply
    }

    /// Handle one request line and produce its reply. The hello handshake is
    /// owned by the server (a session only exists after attach), so `hello`
    /// here is always an error.
    pub fn handle_line(&mut self, line: &str) -> Reply {
        let command = match parse_command(line) {
            Ok(command) => command,
            Err(msg) => return Reply::err(msg),
        };
        match command {
            Command::Hello { .. } => Reply::err("hello already received"),
            Command::Submit {
                id,
                submit,
                runtime,
                procs,
                estimate,
                user,
                seq,
            } => {
                let seq = match self.resolve_seq(seq) {
                    Ok(seq) => seq,
                    Err(reply) => return reply,
                };
                if let Err(msg) = Shard::validate_submit(submit, runtime, procs, estimate) {
                    return Reply::err(format!("submit: {msg}"));
                }
                if self.shard.drained() {
                    return Reply::err("submit: session already drained");
                }
                let time = self.shard.resolve_time(submit);
                self.commit(
                    seq,
                    LoggedCommand::Submit {
                        id,
                        time,
                        runtime,
                        procs,
                        estimate: estimate.unwrap_or(runtime),
                        user,
                    },
                )
            }
            Command::Cancel { id, seq } => {
                let seq = match self.resolve_seq(seq) {
                    Ok(seq) => seq,
                    Err(reply) => return reply,
                };
                if self.shard.drained() {
                    return Reply::err("cancel: session already drained");
                }
                let at = self.shard.wall_now();
                self.commit(seq, LoggedCommand::Cancel { id, at })
            }
            Command::Advance { to, seq } => {
                let seq = match self.resolve_seq(seq) {
                    Ok(seq) => seq,
                    Err(reply) => return reply,
                };
                if to < 0 {
                    return Reply::err(format!("advance: advance target must be >= 0, got {to}"));
                }
                if self.shard.drained() {
                    return Reply::err("advance: session already drained");
                }
                let to = self.shard.resolve_time(Some(to));
                self.commit(seq, LoggedCommand::Advance { to })
            }
            Command::Drain { seq } => {
                let seq = match self.resolve_seq(seq) {
                    Ok(seq) => seq,
                    Err(reply) => return reply,
                };
                if self.shard.drained() {
                    return Reply::err("drain: session already drained");
                }
                self.commit(seq, LoggedCommand::Drain)
            }
            Command::QueryQueue => match self.shard.queue_stats() {
                Ok((now, released, queued, running, finished, used)) => Reply::Line(format!(
                    "ok queue now={now} released={released} queued={queued} \
                     running={running} finished={finished} used={used}"
                )),
                Err(msg) => Reply::err(format!("query: {msg}")),
            },
            Command::QueryJob { id } => match self.shard.job_state(id) {
                Ok(Some(state)) => Reply::Line(format!("ok job id={id} {}", render_state(&state))),
                Ok(None) => Reply::err(format!("query: unknown job {id}")),
                Err(msg) => Reply::err(format!("query: {msg}")),
            },
            Command::Whatif { id, scheduler } => match self.shard.whatif(id, &scheduler) {
                Ok(Ok(p)) => Reply::Line(format!(
                    "ok whatif id={id} scheduler={} start={} wait={} already_started={}",
                    p.scheduler, p.start, p.wait, p.already_started
                )),
                Ok(Err(probe_err)) => Reply::err(format!("whatif: {probe_err}")),
                Err(msg) => Reply::err(format!("whatif: {msg}")),
            },
            Command::Trace => {
                let body = self.shard.trace_text().into_bytes();
                Reply::Payload {
                    head: format!(
                        "ok trace bytes={} records={}",
                        body.len(),
                        self.shard.record_count()
                    ),
                    body,
                }
            }
            Command::Bye => Reply::Goodbye("ok bye".into()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ClockMode;
    use crate::protocol::payload_len;

    fn afap_config() -> ShardConfig {
        ShardConfig {
            scheduler: "fcfs".into(),
            machine: 64,
            mode: ClockMode::Afap,
            store_dir: None,
        }
    }

    fn ready_session() -> Session {
        Session::create(&afap_config(), "t".into(), None).unwrap()
    }

    fn line(session: &mut Session, cmd: &str) -> String {
        match session.handle_line(cmd) {
            Reply::Line(l) => l,
            other => panic!("expected line reply for {cmd:?}, got {other:?}"),
        }
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("psbench-session-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn logged_commands_render_and_parse_exactly() {
        let cases = [
            LoggedCommand::Submit {
                id: 7,
                time: 100,
                runtime: 60,
                procs: 4,
                estimate: 90,
                user: Some(3),
            },
            LoggedCommand::Submit {
                id: 1,
                time: 0,
                runtime: 5,
                procs: 1,
                estimate: 5,
                user: None,
            },
            LoggedCommand::Cancel { id: 9, at: None },
            LoggedCommand::Cancel {
                id: 9,
                at: Some(101.7),
            },
            LoggedCommand::Advance { to: 500 },
            LoggedCommand::Drain,
        ];
        for cmd in cases {
            let rendered = cmd.render();
            assert_eq!(
                LoggedCommand::parse(&rendered).as_ref(),
                Some(&cmd),
                "{rendered}"
            );
        }
        // The wall instant travels as the exact f64 bit pattern, not
        // decimal text that could round.
        assert_eq!(
            LoggedCommand::Cancel {
                id: 9,
                at: Some(101.7)
            }
            .render(),
            format!("cancel id=9 at=b{:016x}", 101.7_f64.to_bits())
        );
        assert_eq!(LoggedCommand::parse("submit id=1"), None);
        assert_eq!(LoggedCommand::parse("drain now"), None);
    }

    #[test]
    fn hello_inside_a_session_is_refused() {
        let mut session = ready_session();
        let err = line(&mut session, "hello psbench-serve/1");
        assert_eq!(err, "err hello already received");
    }

    #[test]
    fn full_session_flow() {
        let mut session = ready_session();
        assert_eq!(
            line(&mut session, "submit id=1 submit=0 runtime=100 procs=64"),
            "ok submit id=1 time=0"
        );
        assert_eq!(
            line(&mut session, "submit id=2 submit=10 runtime=50 procs=8"),
            "ok submit id=2 time=10"
        );
        // Job 2's arrival sits exactly on the released frontier, so it is
        // still pending until time moves past it.
        let job = line(&mut session, "query job 2");
        assert!(job.contains("state=pending"), "{job}");
        assert_eq!(line(&mut session, "advance to=20"), "ok advance now=10");
        let q = line(&mut session, "query queue");
        assert!(q.contains("running=1") && q.contains("queued=1"), "{q}");
        let job = line(&mut session, "query job 2");
        assert!(job.contains("state=queued"), "{job}");
        let what = line(&mut session, "whatif 2 under easy");
        assert!(
            what.starts_with("ok whatif id=2 scheduler=easy start=100"),
            "{what}"
        );
        // The probe did not perturb the live session.
        let job = line(&mut session, "query job 2");
        assert!(job.contains("state=queued"), "{job}");
        let Reply::Payload { head, body } = session.handle_line("trace") else {
            panic!("expected trace payload");
        };
        assert_eq!(payload_len(&head), Some(body.len()));
        let Reply::Payload { head, body } = session.handle_line("drain") else {
            panic!("expected drain payload");
        };
        assert_eq!(payload_len(&head), Some(body.len()));
        assert!(head.contains("finished=2"), "{head}");
        let decoded = psbench_store::decode_result(&String::from_utf8(body).unwrap()).unwrap();
        assert_eq!(decoded.finished.len(), 2);
        // After drain, mutation fails but trace and bye still work.
        let err = line(&mut session, "submit id=3 runtime=5 procs=1");
        assert!(
            err.starts_with("err submit: session already drained"),
            "{err}"
        );
        assert!(matches!(
            session.handle_line("trace"),
            Reply::Payload { .. }
        ));
        assert!(matches!(session.handle_line("bye"), Reply::Goodbye(_)));
    }

    #[test]
    fn whatif_unknown_scheduler_lists_the_zoo() {
        let mut session = ready_session();
        line(&mut session, "submit id=1 submit=0 runtime=100 procs=64");
        let err = line(&mut session, "whatif 1 under quantum");
        assert!(err.starts_with("err whatif: unknown scheduler"), "{err}");
        for name in psbench_sched::scheduler_names() {
            assert!(err.contains(name), "reply should list {name}");
        }
    }

    #[test]
    fn errors_leave_the_session_usable() {
        let mut session = ready_session();
        for bad in [
            "gibberish",
            "submit id=1 runtime=-4 procs=2",
            "submit id=1 runtime=4 procs=0",
            "cancel id=99",
            "whatif 1 under nope",
            "query job 42",
            "advance to=-5",
        ] {
            let reply = session.handle_line(bad);
            let Reply::Line(l) = reply else {
                panic!("expected err line for {bad:?}")
            };
            assert!(l.starts_with("err "), "{bad:?} -> {l}");
        }
        assert_eq!(
            line(&mut session, "submit id=1 submit=5 runtime=10 procs=2"),
            "ok submit id=1 time=5"
        );
    }

    #[test]
    fn seq_makes_mutations_idempotent() {
        let mut session = ready_session();
        let first = line(
            &mut session,
            "submit id=1 submit=0 runtime=10 procs=4 seq=1",
        );
        assert_eq!(first, "ok submit id=1 time=0");
        assert_eq!(session.last_seq(), 1);
        // Re-sending the same seq replays the cached reply without applying:
        // no "already submitted" error, no duplicate job.
        let replayed = line(
            &mut session,
            "submit id=1 submit=0 runtime=10 procs=4 seq=1",
        );
        assert_eq!(replayed, first);
        let job = line(&mut session, "query job 1");
        assert!(job.contains("state=pending"), "{job}");
        // A smaller seq is stale; seq 0 is invalid.
        let stale = line(&mut session, "advance to=5 seq=0");
        assert!(stale.starts_with("err seq must be >= 1"), "{stale}");
        line(&mut session, "advance to=5 seq=7"); // gaps are allowed
        assert_eq!(session.last_seq(), 7);
        let stale = line(&mut session, "advance to=9 seq=3");
        assert!(
            stale.starts_with("err stale seq 3; session already at seq 7"),
            "{stale}"
        );
        // Validation failures consume no seq.
        let bad = line(&mut session, "submit id=2 runtime=-1 procs=1 seq=9");
        assert!(bad.starts_with("err submit:"), "{bad}");
        assert_eq!(session.last_seq(), 7);
    }

    #[test]
    fn journaled_session_recovers_bit_identically() {
        let dir = temp_dir("recover");
        let path = dir.join("night.journal");
        // Uninterrupted twin for the oracle.
        let mut twin = ready_session();
        // The journaled session: killed (dropped) after three commands.
        {
            let mut session = Session::create(
                &afap_config(),
                "night".into(),
                Some((&path, FsyncPolicy::Always)),
            )
            .unwrap();
            for cmd in [
                "submit id=1 submit=0 runtime=100 procs=64",
                "submit id=2 submit=10 runtime=50 procs=8 estimate=80 user=3",
                "advance to=200",
            ] {
                let a = session.handle_line(cmd);
                let b = twin.handle_line(cmd);
                assert_eq!(a, b, "{cmd}");
            }
            // Dropped here without drain: the crash.
        }
        let mut recovered = Session::recover(&path, FsyncPolicy::Always, None).unwrap();
        assert_eq!(recovered.name(), "night");
        assert_eq!(recovered.last_seq(), 3);
        // Both sessions continue and drain to byte-identical results.
        for cmd in ["submit id=3 submit=250 runtime=5 procs=1", "drain"] {
            let a = recovered.handle_line(cmd);
            let b = twin.handle_line(cmd);
            assert_eq!(a, b, "{cmd}");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn recovery_truncates_a_torn_tail_and_replays_the_rest() {
        let dir = temp_dir("torn");
        let path = dir.join("s.journal");
        {
            let mut session = Session::create(
                &afap_config(),
                "s".into(),
                Some((&path, FsyncPolicy::Always)),
            )
            .unwrap();
            line(&mut session, "submit id=1 submit=0 runtime=10 procs=4");
            line(&mut session, "advance to=50");
        }
        // Simulate a torn append: garbage bytes at the physical tail.
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .unwrap();
        f.write_all(b"c 3 deadbeef adva").unwrap();
        drop(f);
        let mut recovered = Session::recover(&path, FsyncPolicy::Always, None).unwrap();
        assert_eq!(recovered.last_seq(), 2);
        // The torn bytes are physically gone; the next append lands clean
        // and a second recovery still works.
        line(&mut recovered, "submit id=2 submit=60 runtime=5 procs=1");
        drop(recovered);
        let recovered = Session::recover(&path, FsyncPolicy::Always, None).unwrap();
        assert_eq!(recovered.last_seq(), 3);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn recovery_rejects_mid_file_corruption() {
        let dir = temp_dir("midfile");
        let path = dir.join("s.journal");
        std::fs::write(
            &path,
            format!(
                "open proto=1 scheduler=fcfs machine=8 mode=afap\n\
                 corrupted line\n\
                 {}\n",
                frame_record(1, "advance to=10")
            ),
        )
        .unwrap();
        let err = match Session::recover(&path, FsyncPolicy::Always, None) {
            Err(e) => e,
            Ok(_) => panic!("mid-file corruption must refuse recovery"),
        };
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn recovery_replays_the_cached_reply_for_the_last_seq() {
        let dir = temp_dir("cachedreply");
        let path = dir.join("s.journal");
        let reply_live;
        {
            let mut session = Session::create(
                &afap_config(),
                "s".into(),
                Some((&path, FsyncPolicy::Always)),
            )
            .unwrap();
            reply_live = line(
                &mut session,
                "submit id=1 submit=0 runtime=10 procs=4 seq=5",
            );
        }
        // The client never saw the reply and re-sends seq=5 after recovery:
        // it gets the identical reply, and the job is not duplicated.
        let mut recovered = Session::recover(&path, FsyncPolicy::Always, None).unwrap();
        let replayed = line(
            &mut recovered,
            "submit id=1 submit=0 runtime=10 procs=4 seq=5",
        );
        assert_eq!(replayed, reply_live);
        let job = line(&mut recovered, "query job 1");
        assert!(job.contains("state=pending"), "{job}");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
