//! Session state machine: one per connection, wrapping a [`Shard`].
//!
//! A session is a tiny three-phase protocol automaton: it awaits the hello,
//! then serves commands against its shard, and after `drain` only `trace` and
//! `bye` remain meaningful. Every request line maps to exactly one [`Reply`];
//! malformed input produces an `err` line and leaves the session (and the
//! shard behind it) fully usable — bad input never wedges a connection, let
//! alone the shared pool.

use psbench_sim::JobState;

use crate::protocol::{parse_command, Command, Reply, PROTOCOL_VERSION};
use crate::shard::Shard;

/// Where a session is in its life cycle.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Phase {
    /// Connected, hello not yet received.
    AwaitHello,
    /// Hello done; the shard is live.
    Ready,
    /// The shard has been drained; only `trace` and `bye` still work.
    Drained,
}

/// One client session: a protocol phase plus its engine shard.
pub struct Session {
    shard: Shard,
    phase: Phase,
}

/// Render a [`JobState`] as the `state=…` tail of a `query job` reply.
fn render_state(state: &JobState) -> String {
    match state {
        JobState::Pending { submit } => format!("state=pending submit={submit}"),
        JobState::Queued { queued_at } => format!("state=queued queued_at={queued_at}"),
        JobState::Running {
            started_at,
            predicted_end,
            procs,
        } => format!(
            "state=running started_at={started_at} predicted_end={predicted_end} procs={procs}"
        ),
        JobState::Finished { start, end } => format!("state=finished start={start} end={end}"),
        JobState::Cancelled => "state=cancelled".into(),
        JobState::Discarded => "state=discarded".into(),
    }
}

impl Session {
    /// Start a new session around a freshly built shard.
    pub fn new(shard: Shard) -> Session {
        Session {
            shard,
            phase: Phase::AwaitHello,
        }
    }

    /// Borrow the underlying shard (used by in-process embedders and tests).
    pub fn shard(&self) -> &Shard {
        &self.shard
    }

    /// Handle one request line and produce its reply.
    pub fn handle_line(&mut self, line: &str) -> Reply {
        let command = match parse_command(line) {
            Ok(command) => command,
            Err(msg) => return Reply::err(msg),
        };
        if self.phase == Phase::AwaitHello {
            return match command {
                Command::Hello { version } if version == PROTOCOL_VERSION => {
                    self.phase = Phase::Ready;
                    Reply::Line(format!(
                        "ok hello proto={PROTOCOL_VERSION} scheduler={} machine={} mode={}",
                        self.shard.scheduler_name(),
                        self.shard.machine(),
                        self.shard.mode(),
                    ))
                }
                Command::Hello { version } => Reply::err(format!(
                    "unsupported protocol version {version}; this server speaks {PROTOCOL_VERSION}"
                )),
                Command::Bye => Reply::Goodbye("ok bye".into()),
                _ => Reply::err("expected: hello psbench-serve/1"),
            };
        }
        match command {
            Command::Hello { .. } => Reply::err("hello already received"),
            Command::Submit {
                id,
                submit,
                runtime,
                procs,
                estimate,
                user,
            } => match self
                .shard
                .submit(id, submit, runtime, procs, estimate, user)
            {
                Ok(t) => Reply::Line(format!("ok submit id={id} time={t}")),
                Err(msg) => Reply::err(format!("submit: {msg}")),
            },
            Command::Cancel { id } => match self.shard.cancel(id) {
                Ok(()) => Reply::Line(format!("ok cancel id={id}")),
                Err(msg) => Reply::err(format!("cancel: {msg}")),
            },
            Command::QueryQueue => match self.shard.queue_stats() {
                Ok((now, released, queued, running, finished, used)) => Reply::Line(format!(
                    "ok queue now={now} released={released} queued={queued} \
                     running={running} finished={finished} used={used}"
                )),
                Err(msg) => Reply::err(format!("query: {msg}")),
            },
            Command::QueryJob { id } => match self.shard.job_state(id) {
                Ok(Some(state)) => Reply::Line(format!("ok job id={id} {}", render_state(&state))),
                Ok(None) => Reply::err(format!("query: unknown job {id}")),
                Err(msg) => Reply::err(format!("query: {msg}")),
            },
            Command::Whatif { id, scheduler } => match self.shard.whatif(id, &scheduler) {
                Ok(Ok(p)) => Reply::Line(format!(
                    "ok whatif id={id} scheduler={} start={} wait={} already_started={}",
                    p.scheduler, p.start, p.wait, p.already_started
                )),
                Ok(Err(probe_err)) => Reply::err(format!("whatif: {probe_err}")),
                Err(msg) => Reply::err(format!("whatif: {msg}")),
            },
            Command::Advance { to } => match self.shard.advance(to) {
                Ok(now) => Reply::Line(format!("ok advance now={now}")),
                Err(msg) => Reply::err(format!("advance: {msg}")),
            },
            Command::Trace => {
                let body = self.shard.trace_text().into_bytes();
                Reply::Payload {
                    head: format!(
                        "ok trace bytes={} records={}",
                        body.len(),
                        self.shard.record_count()
                    ),
                    body,
                }
            }
            Command::Drain => match self.shard.drain() {
                Ok(drained) => {
                    self.phase = Phase::Drained;
                    let body = psbench_store::encode_result(&drained.result).into_bytes();
                    let stored = drained
                        .stored
                        .map(|key| format!(" stored={key}"))
                        .unwrap_or_default();
                    Reply::Payload {
                        head: format!(
                            "ok drain bytes={} scheduler={} machine={} finished={}{stored}",
                            body.len(),
                            drained.result.scheduler,
                            drained.result.machine_size,
                            drained.result.finished.len(),
                        ),
                        body,
                    }
                }
                Err(msg) => Reply::err(format!("drain: {msg}")),
            },
            Command::Bye => Reply::Goodbye("ok bye".into()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ClockMode;
    use crate::protocol::payload_len;
    use crate::shard::ShardConfig;

    fn ready_session() -> Session {
        let config = ShardConfig {
            scheduler: "fcfs".into(),
            machine: 64,
            mode: ClockMode::Afap,
            store_dir: None,
        };
        let mut session = Session::new(Shard::new(&config, "t".into()).unwrap());
        let Reply::Line(hello) = session.handle_line("hello psbench-serve/1") else {
            panic!("hello should succeed");
        };
        assert!(hello.starts_with("ok hello proto=1 "), "{hello}");
        session
    }

    fn line(session: &mut Session, cmd: &str) -> String {
        match session.handle_line(cmd) {
            Reply::Line(l) => l,
            other => panic!("expected line reply for {cmd:?}, got {other:?}"),
        }
    }

    #[test]
    fn refuses_commands_before_hello() {
        let config = ShardConfig {
            scheduler: "fcfs".into(),
            machine: 8,
            mode: ClockMode::Afap,
            store_dir: None,
        };
        let mut session = Session::new(Shard::new(&config, "t".into()).unwrap());
        let Reply::Line(err) = session.handle_line("submit id=1 runtime=5 procs=1") else {
            panic!("expected err line");
        };
        assert!(err.starts_with("err "), "{err}");
        // The session is not wedged: hello still works afterwards.
        let Reply::Line(ok) = session.handle_line("hello psbench-serve/1") else {
            panic!("expected hello ok");
        };
        assert!(ok.starts_with("ok hello"), "{ok}");
    }

    #[test]
    fn rejects_wrong_protocol_version() {
        let config = ShardConfig {
            scheduler: "fcfs".into(),
            machine: 8,
            mode: ClockMode::Afap,
            store_dir: None,
        };
        let mut session = Session::new(Shard::new(&config, "t".into()).unwrap());
        let Reply::Line(err) = session.handle_line("hello psbench-serve/99") else {
            panic!("expected err line");
        };
        assert!(err.contains("unsupported protocol version 99"), "{err}");
    }

    #[test]
    fn full_session_flow() {
        let mut session = ready_session();
        assert_eq!(
            line(&mut session, "submit id=1 submit=0 runtime=100 procs=64"),
            "ok submit id=1 time=0"
        );
        assert_eq!(
            line(&mut session, "submit id=2 submit=10 runtime=50 procs=8"),
            "ok submit id=2 time=10"
        );
        // Job 2's arrival sits exactly on the released frontier, so it is
        // still pending until time moves past it.
        let job = line(&mut session, "query job 2");
        assert!(job.contains("state=pending"), "{job}");
        assert_eq!(line(&mut session, "advance to=20"), "ok advance now=10");
        let q = line(&mut session, "query queue");
        assert!(q.contains("running=1") && q.contains("queued=1"), "{q}");
        let job = line(&mut session, "query job 2");
        assert!(job.contains("state=queued"), "{job}");
        let what = line(&mut session, "whatif 2 under easy");
        assert!(
            what.starts_with("ok whatif id=2 scheduler=easy start=100"),
            "{what}"
        );
        // The probe did not perturb the live session.
        let job = line(&mut session, "query job 2");
        assert!(job.contains("state=queued"), "{job}");
        let Reply::Payload { head, body } = session.handle_line("trace") else {
            panic!("expected trace payload");
        };
        assert_eq!(payload_len(&head), Some(body.len()));
        let Reply::Payload { head, body } = session.handle_line("drain") else {
            panic!("expected drain payload");
        };
        assert_eq!(payload_len(&head), Some(body.len()));
        assert!(head.contains("finished=2"), "{head}");
        let decoded = psbench_store::decode_result(&String::from_utf8(body).unwrap()).unwrap();
        assert_eq!(decoded.finished.len(), 2);
        // After drain, mutation fails but trace and bye still work.
        let err = line(&mut session, "submit id=3 runtime=5 procs=1");
        assert!(
            err.starts_with("err submit: session already drained"),
            "{err}"
        );
        assert!(matches!(
            session.handle_line("trace"),
            Reply::Payload { .. }
        ));
        assert!(matches!(session.handle_line("bye"), Reply::Goodbye(_)));
    }

    #[test]
    fn whatif_unknown_scheduler_lists_the_zoo() {
        let mut session = ready_session();
        line(&mut session, "submit id=1 submit=0 runtime=100 procs=64");
        let err = line(&mut session, "whatif 1 under quantum");
        assert!(err.starts_with("err whatif: unknown scheduler"), "{err}");
        for name in psbench_sched::scheduler_names() {
            assert!(err.contains(name), "reply should list {name}");
        }
    }

    #[test]
    fn errors_leave_the_session_usable() {
        let mut session = ready_session();
        for bad in [
            "gibberish",
            "submit id=1 runtime=-4 procs=2",
            "submit id=1 runtime=4 procs=0",
            "cancel id=99",
            "whatif 1 under nope",
            "query job 42",
            "advance to=-5",
        ] {
            let reply = session.handle_line(bad);
            let Reply::Line(l) = reply else {
                panic!("expected err line for {bad:?}")
            };
            assert!(l.starts_with("err "), "{bad:?} -> {l}");
        }
        assert_eq!(
            line(&mut session, "submit id=1 submit=5 runtime=10 procs=2"),
            "ok submit id=1 time=5"
        );
    }
}
