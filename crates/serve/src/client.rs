//! A lockstep script client for the serve protocol.
//!
//! The client writes one command line, waits for its reply (plus any
//! byte-framed payload), records both, and moves on. Scripts are plain text:
//! one protocol line per line, with blank lines and `#` comments ignored.
//! This is the driver behind `psbench client` and the CI replay check.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

use crate::server::read_reply;

/// A payload captured during a script run.
#[derive(Debug, Clone, PartialEq)]
pub struct CapturedPayload {
    /// The command line that elicited the payload (e.g. `trace`, `drain`).
    pub command: String,
    /// The reply head line (`ok trace bytes=… records=…`).
    pub head: String,
    /// The raw payload bytes.
    pub body: Vec<u8>,
}

/// Everything a script run produced, in order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Transcript {
    /// One reply head line per executed script line.
    pub replies: Vec<String>,
    /// Byte-framed payloads, in the order they arrived.
    pub payloads: Vec<CapturedPayload>,
}

impl Transcript {
    /// The first captured payload for `command` (`"trace"` or `"drain"`).
    pub fn payload(&self, command: &str) -> Option<&CapturedPayload> {
        self.payloads.iter().find(|p| p.command == command)
    }

    /// True if any reply was an `err` line.
    pub fn has_errors(&self) -> bool {
        self.replies.iter().any(|r| r.starts_with("err"))
    }
}

/// Run a script against a server, line by line, in lockstep.
///
/// Stops at the first transport error or after a `bye`. Protocol-level `err`
/// replies do not stop the run — they are recorded in the transcript so the
/// caller can decide what to make of them.
pub fn run_script<A, S>(addr: A, script: &[S]) -> std::io::Result<Transcript>
where
    A: ToSocketAddrs,
    S: AsRef<str>,
{
    let stream = TcpStream::connect(addr)?;
    // Lockstep request/reply: disable Nagle so each command line goes out
    // immediately instead of waiting on a delayed ACK.
    let _ = stream.set_nodelay(true);
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let mut transcript = Transcript::default();
    for raw in script {
        let line = raw.as_ref().trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        writeln!(writer, "{line}")?;
        writer.flush()?;
        let Some((head, body)) = read_reply(&mut reader)? else {
            break;
        };
        transcript.replies.push(head.clone());
        if let Some(body) = body {
            let command = line.split_whitespace().next().unwrap_or("").to_string();
            transcript.payloads.push(CapturedPayload {
                command,
                head,
                body,
            });
        }
        if line == "bye" {
            break;
        }
    }
    Ok(transcript)
}

/// Pipeline a batch of command lines: write them all, then collect exactly
/// one reply per line. Only valid for commands that reply with a single line
/// (no payloads). Used by high-throughput feeders where per-line lockstep
/// round trips would dominate.
pub fn run_pipelined(
    writer: &mut (impl Write + ?Sized),
    reader: &mut impl BufRead,
    lines: &[String],
) -> std::io::Result<Vec<String>> {
    for line in lines {
        writeln!(writer, "{line}")?;
    }
    writer.flush()?;
    let mut replies = Vec::with_capacity(lines.len());
    for _ in lines {
        let mut head = String::new();
        if reader.read_line(&mut head)? == 0 {
            break;
        }
        replies.push(head.trim_end_matches(['\n', '\r']).to_string());
    }
    Ok(replies)
}
