//! A lockstep script client for the serve protocol.
//!
//! The client writes one command line, waits for its reply (plus any
//! byte-framed payload), records both, and moves on. Scripts are plain text:
//! one protocol line per line, with blank lines and `#` comments ignored.
//! This is the driver behind `psbench client` and the CI replay check.
//!
//! [`run_script_with`] adds graceful degradation: connect failures and
//! `err busy retry-after=<secs>` hello replies are retried with exponential
//! backoff (honoring the server's hint), so a briefly saturated or
//! restarting server looks like latency, not an error. Combined with `seq=`
//! numbers on mutating commands (see [`crate::protocol::Command::seq`]),
//! scripts can be re-run against a recovered session without double-applying
//! anything.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::server::read_reply;

/// A payload captured during a script run.
#[derive(Debug, Clone, PartialEq)]
pub struct CapturedPayload {
    /// The command line that elicited the payload (e.g. `trace`, `drain`).
    pub command: String,
    /// The reply head line (`ok trace bytes=… records=…`).
    pub head: String,
    /// The raw payload bytes.
    pub body: Vec<u8>,
}

/// Everything a script run produced, in order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Transcript {
    /// One reply head line per executed script line.
    pub replies: Vec<String>,
    /// Byte-framed payloads, in the order they arrived.
    pub payloads: Vec<CapturedPayload>,
}

impl Transcript {
    /// The first captured payload for `command` (`"trace"` or `"drain"`).
    pub fn payload(&self, command: &str) -> Option<&CapturedPayload> {
        self.payloads.iter().find(|p| p.command == command)
    }

    /// True if any reply was an `err` line.
    pub fn has_errors(&self) -> bool {
        self.replies.iter().any(|r| r.starts_with("err"))
    }
}

/// Retry policy for [`run_script_with`]: how many times to retry a failed
/// connect or a busy hello, with exponential backoff between attempts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Number of *retries* after the first attempt (0 = fail fast).
    pub attempts: u32,
    /// Backoff before the first retry; doubles on each subsequent one.
    pub base: Duration,
    /// Ceiling on the computed backoff (a server `retry-after=` hint may
    /// still exceed it).
    pub cap: Duration,
}

impl RetryPolicy {
    /// No retries: behave exactly like [`run_script`].
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            attempts: 0,
            base: Duration::ZERO,
            cap: Duration::ZERO,
        }
    }

    /// `attempts` retries starting at 50 ms, doubling, capped at 2 s.
    pub fn quick(attempts: u32) -> RetryPolicy {
        RetryPolicy {
            attempts,
            base: Duration::from_millis(50),
            cap: Duration::from_secs(2),
        }
    }

    /// Backoff before retry number `attempt` (0-based).
    fn delay(&self, attempt: u32) -> Duration {
        self.base
            .saturating_mul(1u32 << attempt.min(16))
            .min(self.cap)
    }
}

/// The `retry-after=<secs>` hint in an `err busy …` reply, if present.
fn busy_retry_after(reply: &str) -> Option<Duration> {
    if !reply.starts_with("err busy") {
        return None;
    }
    let secs = reply
        .split_whitespace()
        .find_map(|tok| tok.strip_prefix("retry-after="))
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(1);
    Some(Duration::from_secs(secs))
}

/// Run a script against a server, line by line, in lockstep.
///
/// Stops at the first transport error or after a `bye`. Protocol-level `err`
/// replies do not stop the run — they are recorded in the transcript so the
/// caller can decide what to make of them.
pub fn run_script<A, S>(addr: A, script: &[S]) -> std::io::Result<Transcript>
where
    A: ToSocketAddrs,
    S: AsRef<str>,
{
    run_script_with(addr, script, RetryPolicy::none())
}

/// [`run_script`] with retry/backoff on connect failures and on an
/// `err busy retry-after=<secs>` reply to the script's *first* command (the
/// hello — nothing has been applied yet, so restarting the script is safe).
pub fn run_script_with<A, S>(
    addr: A,
    script: &[S],
    retry: RetryPolicy,
) -> std::io::Result<Transcript>
where
    A: ToSocketAddrs,
    S: AsRef<str>,
{
    let mut attempt = 0;
    loop {
        match try_run_script(&addr, script) {
            Ok((transcript, None)) => return Ok(transcript),
            Ok((transcript, Some(retry_after))) => {
                if attempt >= retry.attempts {
                    return Ok(transcript);
                }
                std::thread::sleep(retry.delay(attempt).max(retry_after));
            }
            Err(e) => {
                if attempt >= retry.attempts {
                    return Err(e);
                }
                std::thread::sleep(retry.delay(attempt));
            }
        }
        attempt += 1;
    }
}

/// One script attempt. Returns the transcript plus `Some(retry_after)` when
/// the first reply was `err busy …` (the attempt is restartable).
fn try_run_script<A, S>(addr: A, script: &[S]) -> std::io::Result<(Transcript, Option<Duration>)>
where
    A: ToSocketAddrs,
    S: AsRef<str>,
{
    let stream = TcpStream::connect(addr)?;
    // Lockstep request/reply: disable Nagle so each command line goes out
    // immediately instead of waiting on a delayed ACK.
    let _ = stream.set_nodelay(true);
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let mut transcript = Transcript::default();
    let mut first = true;
    for raw in script {
        let line = raw.as_ref().trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        writeln!(writer, "{line}")?;
        writer.flush()?;
        let Some((head, body)) = read_reply(&mut reader)? else {
            break;
        };
        if first {
            if let Some(retry_after) = busy_retry_after(&head) {
                transcript.replies.push(head);
                return Ok((transcript, Some(retry_after)));
            }
            first = false;
        }
        transcript.replies.push(head.clone());
        if let Some(body) = body {
            let command = line.split_whitespace().next().unwrap_or("").to_string();
            transcript.payloads.push(CapturedPayload {
                command,
                head,
                body,
            });
        }
        if line == "bye" {
            break;
        }
    }
    Ok((transcript, None))
}

/// Pipeline a batch of command lines: write them all, then collect exactly
/// one reply per line. Only valid for commands that reply with a single line
/// (no payloads). Used by high-throughput feeders where per-line lockstep
/// round trips would dominate.
pub fn run_pipelined(
    writer: &mut (impl Write + ?Sized),
    reader: &mut impl BufRead,
    lines: &[String],
) -> std::io::Result<Vec<String>> {
    for line in lines {
        writeln!(writer, "{line}")?;
    }
    writer.flush()?;
    let mut replies = Vec::with_capacity(lines.len());
    for _ in lines {
        let mut head = String::new();
        if reader.read_line(&mut head)? == 0 {
            break;
        }
        replies.push(head.trim_end_matches(['\n', '\r']).to_string());
    }
    Ok(replies)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn busy_replies_carry_their_retry_hint() {
        assert_eq!(
            busy_retry_after("err busy retry-after=3 server at session capacity (2)"),
            Some(Duration::from_secs(3))
        );
        // Malformed hint falls back to one second.
        assert_eq!(
            busy_retry_after("err busy retry-after=soon"),
            Some(Duration::from_secs(1))
        );
        assert_eq!(busy_retry_after("err submit: bad"), None);
        assert_eq!(busy_retry_after("ok hello proto=1"), None);
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let retry = RetryPolicy::quick(5);
        assert_eq!(retry.delay(0), Duration::from_millis(50));
        assert_eq!(retry.delay(1), Duration::from_millis(100));
        assert_eq!(retry.delay(10), Duration::from_secs(2));
        assert_eq!(RetryPolicy::none().delay(3), Duration::ZERO);
    }
}
