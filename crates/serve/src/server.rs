//! The TCP server: listener, named session pool, per-connection threads.
//!
//! Concurrency model: plain `std::net` blocking I/O, one thread per
//! connection, with a shared session pool guarded by `parking_lot` mutexes.
//! Each connection *attaches* to a named slot holding an
//! `Arc<Mutex<Session>>`; the pool lock is only taken to attach, detach, and
//! evict, so sessions never contend with each other on the hot path.
//! `parking_lot` mutexes do not poison, so a panicking connection thread can
//! never wedge the pool for everyone else.
//!
//! # Session life cycle
//!
//! `hello` attaches: to a fresh session (server-generated name), to a named
//! session the client chooses, or — after a disconnect or even a server
//! crash, when `state_dir` journaling is on — back to an existing one. A
//! disconnect without `drain` merely *detaches*: the slot stays resumable
//! until the idle timeout evicts it (journaled sessions remain recoverable
//! from disk afterwards; unjournaled ones are gone). A drained session's
//! slot and journal are removed at detach.
//!
//! At startup the server scans `<state_dir>/sessions/*.journal` and rebuilds
//! every session by deterministic replay. A journal that fails recovery
//! poisons its name (attaching reports the error) instead of crashing the
//! server; the file is left in place for inspection.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use psbench_store::FsyncPolicy;

use crate::clock::ClockMode;
use crate::protocol::{parse_command, Command, Reply, MAX_LINE_BYTES, PROTOCOL_VERSION};
use crate::session::Session;
use crate::shard::ShardConfig;

/// Server-wide configuration; every *new* session inherits it (recovered
/// sessions take scheduler/machine/mode from their own journal).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Registry name of the live policy for every new session.
    pub scheduler: String,
    /// Machine size in processors for every new session.
    pub machine: u32,
    /// Clock mode for every new session.
    pub mode: ClockMode,
    /// Artifact store root drained sessions are published into, if any.
    pub store_dir: Option<PathBuf>,
    /// Maximum number of concurrently *attached* sessions.
    pub max_sessions: usize,
    /// Directory for crash-safe state. When set, every session is
    /// write-ahead journaled under `<state_dir>/sessions/<name>.journal`
    /// and survives a crash of the serving process.
    pub state_dir: Option<PathBuf>,
    /// Fsync policy for session journals.
    pub fsync: FsyncPolicy,
    /// How long an idle connection may sit between requests, and how long a
    /// detached session stays resumable in memory. `None` disables both.
    pub idle_timeout: Option<Duration>,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            scheduler: "fcfs".into(),
            machine: 128,
            mode: ClockMode::Afap,
            store_dir: None,
            max_sessions: 256,
            state_dir: None,
            fsync: FsyncPolicy::Always,
            idle_timeout: Some(Duration::from_secs(300)),
        }
    }
}

/// Journal path for session `name` under `state_dir`.
fn journal_path(state_dir: &Path, name: &str) -> PathBuf {
    state_dir.join("sessions").join(format!("{name}.journal"))
}

/// One pooled session and its attachment state.
struct Slot {
    session: Arc<Mutex<Session>>,
    attached: bool,
    detached_at: Option<Instant>,
}

/// A successful attach: the session plus what the hello reply reports.
struct Attached {
    name: String,
    session: Arc<Mutex<Session>>,
    resumed: bool,
}

/// The shared session pool.
struct SessionPool {
    config: ServeConfig,
    slots: Mutex<HashMap<String, Slot>>,
    /// Sessions whose journal failed recovery: name → error. Attaching to a
    /// poisoned name reports the error; the journal file is left on disk.
    poisoned: Mutex<HashMap<String, String>>,
    next_id: Mutex<u64>,
}

impl SessionPool {
    fn new(config: ServeConfig) -> SessionPool {
        SessionPool {
            config,
            slots: Mutex::new(HashMap::new()),
            poisoned: Mutex::new(HashMap::new()),
            next_id: Mutex::new(0),
        }
    }

    /// Number of currently attached sessions.
    fn attached(&self) -> usize {
        self.slots.lock().values().filter(|s| s.attached).count()
    }

    /// Drop detached slots that have sat idle past the timeout. Journaled
    /// sessions remain recoverable from disk; unjournaled ones are gone.
    fn evict_idle(slots: &mut HashMap<String, Slot>, idle_timeout: Option<Duration>) {
        let Some(timeout) = idle_timeout else { return };
        slots.retain(|_, slot| {
            slot.attached
                || slot
                    .detached_at
                    .map(|at| at.elapsed() < timeout)
                    .unwrap_or(true)
        });
    }

    fn shard_config(&self) -> ShardConfig {
        ShardConfig {
            scheduler: self.config.scheduler.clone(),
            machine: self.config.machine,
            mode: self.config.mode,
            store_dir: self.config.store_dir.clone(),
        }
    }

    /// Attach to `requested` (or a fresh server-named session). On success
    /// the slot is marked attached; the caller must `detach` when done.
    fn attach(&self, requested: Option<String>) -> Result<Attached, String> {
        let mut slots = self.slots.lock();
        Self::evict_idle(&mut slots, self.config.idle_timeout);
        let live = slots.values().filter(|s| s.attached).count();
        let name = match requested {
            Some(name) => {
                if let Some(msg) = self.poisoned.lock().get(&name) {
                    return Err(format!("session {name} failed recovery: {msg}"));
                }
                if let Some(slot) = slots.get_mut(&name) {
                    if slot.attached {
                        return Err(format!("session {name} is already attached"));
                    }
                    if live >= self.config.max_sessions {
                        return Err(self.busy());
                    }
                    slot.attached = true;
                    slot.detached_at = None;
                    return Ok(Attached {
                        name,
                        session: slot.session.clone(),
                        resumed: true,
                    });
                }
                name
            }
            None => self.generate_name(&slots),
        };
        if live >= self.config.max_sessions {
            return Err(self.busy());
        }
        // Not pooled: recover it from disk if a journal exists, else create.
        let on_disk = self
            .config
            .state_dir
            .as_ref()
            .map(|dir| journal_path(dir, &name));
        let (session, resumed) = match &on_disk {
            Some(path) if path.exists() => {
                match Session::recover(path, self.config.fsync, self.config.store_dir.clone()) {
                    Ok(session) => (session, true),
                    Err(e) => {
                        self.poisoned.lock().insert(name.clone(), e.to_string());
                        return Err(format!("session {name} failed recovery: {e}"));
                    }
                }
            }
            _ => {
                let journal = on_disk.as_deref().map(|path| (path, self.config.fsync));
                (
                    Session::create(&self.shard_config(), name.clone(), journal)?,
                    false,
                )
            }
        };
        let session = Arc::new(Mutex::new(session));
        slots.insert(
            name.clone(),
            Slot {
                session: session.clone(),
                attached: true,
                detached_at: None,
            },
        );
        Ok(Attached {
            name,
            session,
            resumed,
        })
    }

    fn busy(&self) -> String {
        format!(
            "busy retry-after=1 server at session capacity ({})",
            self.config.max_sessions
        )
    }

    /// Generate a fresh session name, skipping live slots, poisoned names,
    /// and journals already on disk.
    fn generate_name(&self, slots: &HashMap<String, Slot>) -> String {
        let poisoned = self.poisoned.lock();
        loop {
            let id = {
                let mut next = self.next_id.lock();
                *next += 1;
                *next
            };
            let name = format!("s{id}");
            let on_disk = self
                .config
                .state_dir
                .as_ref()
                .is_some_and(|dir| journal_path(dir, &name).exists());
            if !slots.contains_key(&name) && !poisoned.contains_key(&name) && !on_disk {
                return name;
            }
        }
    }

    /// Detach `name`. A drained session's slot is removed and its journal
    /// deleted; anything else stays resumable until evicted.
    fn detach(&self, name: &str) {
        let mut slots = self.slots.lock();
        let Some(slot) = slots.get_mut(name) else {
            return;
        };
        slot.attached = false;
        slot.detached_at = Some(Instant::now());
        let journal = {
            let session = slot.session.lock();
            if !session.drained() {
                return;
            }
            session.journal_path().map(Path::to_path_buf)
        };
        slots.remove(name);
        if let Some(path) = journal {
            let _ = std::fs::remove_file(path);
        }
    }

    /// Fsync every pooled session's journal (used at SIGTERM and by tests
    /// running with `fsync: off`).
    fn checkpoint(&self) -> std::io::Result<usize> {
        let slots = self.slots.lock();
        let mut synced = 0;
        for slot in slots.values() {
            slot.session.lock().sync_journal()?;
            synced += 1;
        }
        Ok(synced)
    }

    /// Recover every journal under `state_dir` into detached slots.
    fn recover_state_dir(&self) -> std::io::Result<()> {
        let Some(state_dir) = &self.config.state_dir else {
            return Ok(());
        };
        let dir = state_dir.join("sessions");
        std::fs::create_dir_all(&dir)?;
        let mut slots = self.slots.lock();
        for entry in std::fs::read_dir(&dir)? {
            let path = entry?.path();
            if path.extension().and_then(|e| e.to_str()) != Some("journal") {
                continue;
            }
            let Some(name) = path.file_stem().and_then(|s| s.to_str()).map(String::from) else {
                continue;
            };
            match Session::recover(&path, self.config.fsync, self.config.store_dir.clone()) {
                Ok(session) => {
                    slots.insert(
                        name,
                        Slot {
                            session: Arc::new(Mutex::new(session)),
                            attached: false,
                            detached_at: Some(Instant::now()),
                        },
                    );
                }
                Err(e) => {
                    self.poisoned.lock().insert(name, e.to_string());
                }
            }
        }
        Ok(())
    }
}

/// Handle to a running server. Dropping it stops the listener.
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    pool: Arc<SessionPool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the server is listening on (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Number of currently attached sessions.
    pub fn active_sessions(&self) -> usize {
        self.pool.attached()
    }

    /// Number of session names whose journal failed recovery.
    pub fn poisoned_sessions(&self) -> usize {
        self.pool.poisoned.lock().len()
    }

    /// Fsync every live session journal to disk. Returns how many journals
    /// were synced. With `fsync: always` (the default) this is a no-op
    /// safety net; with `fsync: off` it is the durability point — call it
    /// before a planned shutdown.
    pub fn checkpoint(&self) -> std::io::Result<usize> {
        self.pool.checkpoint()
    }

    /// Stop accepting connections and join the accept thread. Connections
    /// already being served keep running on their own threads until their
    /// clients disconnect.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // The accept loop blocks in accept(); poke it with a throwaway
        // connection so it observes the stop flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if self.accept_thread.is_some() {
            self.shutdown();
        }
    }
}

/// Bind `addr` and start serving. When `state_dir` is configured, every
/// existing session journal is recovered (by deterministic replay) before
/// the listener accepts its first connection. Returns once the listener is
/// live; the accept loop and all connection handling run on background
/// threads.
pub fn serve(addr: impl ToSocketAddrs, config: ServeConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let pool = Arc::new(SessionPool::new(config));
    pool.recover_state_dir()?;
    let accept_stop = stop.clone();
    let accept_pool = pool.clone();
    let accept_thread = std::thread::spawn(move || {
        for stream in listener.incoming() {
            if accept_stop.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = stream else { continue };
            let pool = accept_pool.clone();
            std::thread::spawn(move || handle_connection(stream, pool));
        }
    });
    Ok(ServerHandle {
        addr,
        stop,
        pool,
        accept_thread: Some(accept_thread),
    })
}

/// Outcome of reading one request line.
enum LineRead {
    /// A complete line (terminator stripped).
    Line(String),
    /// End of stream. A torn frame (bytes without a final newline) lands
    /// here too: there is no complete request to answer, so the connection
    /// just ends.
    Eof,
    /// The line exceeded [`MAX_LINE_BYTES`] before a newline appeared.
    TooLong,
    /// The read timed out: the client sat idle past the configured timeout.
    Idle,
}

/// Read one `\n`-terminated line without ever buffering more than the cap.
fn read_line_capped(reader: &mut impl BufRead) -> std::io::Result<LineRead> {
    let mut line: Vec<u8> = Vec::new();
    loop {
        let buf = match reader.fill_buf() {
            Ok(buf) => buf,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                return Ok(LineRead::Idle)
            }
            Err(e) => return Err(e),
        };
        if buf.is_empty() {
            return Ok(LineRead::Eof);
        }
        match buf.iter().position(|&b| b == b'\n') {
            Some(pos) => {
                line.extend_from_slice(&buf[..pos]);
                reader.consume(pos + 1);
                if line.len() > MAX_LINE_BYTES {
                    return Ok(LineRead::TooLong);
                }
                if line.last() == Some(&b'\r') {
                    line.pop();
                }
                return Ok(LineRead::Line(String::from_utf8_lossy(&line).into_owned()));
            }
            None => {
                let n = buf.len();
                line.extend_from_slice(buf);
                reader.consume(n);
                if line.len() > MAX_LINE_BYTES {
                    return Ok(LineRead::TooLong);
                }
            }
        }
    }
}

/// Serve one connection until the client leaves (or misbehaves fatally).
fn handle_connection(stream: TcpStream, pool: Arc<SessionPool>) {
    // The protocol is lockstep request/reply: without TCP_NODELAY, Nagle's
    // algorithm adds a delayed-ACK round trip to every exchange.
    let _ = stream.set_nodelay(true);
    // A wedged or vanished client cannot hold its slot forever: reads time
    // out after the idle timeout and the session detaches (still resumable).
    let _ = stream.set_read_timeout(pool.config.idle_timeout);
    let mut writer = stream;
    let Ok(read_half) = writer.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    // Handshake loop: the server owns hello. Errors (unknown commands, a
    // pool at capacity) leave the connection usable so the client can retry
    // the hello without reconnecting.
    let attached = loop {
        match read_line_capped(&mut reader) {
            Ok(LineRead::Line(line)) => {
                if line.trim().is_empty() {
                    continue;
                }
                let reply = match parse_command(&line) {
                    Err(msg) => Some(format!("err {msg}")),
                    Ok(Command::Hello { version, session }) if version == PROTOCOL_VERSION => {
                        match pool.attach(session) {
                            Ok(attached) => break Some(attached),
                            Err(msg) => Some(format!("err {msg}")),
                        }
                    }
                    Ok(Command::Hello { version, .. }) => Some(format!(
                        "err unsupported protocol version {version}; \
                         this server speaks {PROTOCOL_VERSION}"
                    )),
                    Ok(Command::Bye) => {
                        let _ = writeln!(writer, "ok bye");
                        let _ = writer.flush();
                        return;
                    }
                    Ok(_) => Some("err expected: hello psbench-serve/1".into()),
                };
                if let Some(reply) = reply {
                    if writeln!(writer, "{reply}").is_err() || writer.flush().is_err() {
                        return;
                    }
                }
            }
            Ok(LineRead::TooLong) => {
                let _ = writeln!(writer, "err line exceeds {MAX_LINE_BYTES} bytes");
                return;
            }
            Ok(LineRead::Idle) => {
                let _ = writeln!(writer, "err idle timeout");
                return;
            }
            Ok(LineRead::Eof) | Err(_) => return,
        }
    };
    let Some(attached) = attached else { return };
    let hello = {
        let session = attached.session.lock();
        let shard = session.shard();
        let drained = if session.drained() { " drained" } else { "" };
        format!(
            "ok hello proto={PROTOCOL_VERSION} scheduler={} machine={} mode={} \
             session={} seq={} resumed={}{drained}",
            shard.scheduler_name(),
            shard.machine(),
            shard.mode(),
            attached.name,
            session.last_seq(),
            attached.resumed,
        )
    };
    if writeln!(writer, "{hello}").is_err() || writer.flush().is_err() {
        pool.detach(&attached.name);
        return;
    }
    loop {
        let reply = match read_line_capped(&mut reader) {
            Ok(LineRead::Line(line)) => {
                if line.trim().is_empty() {
                    continue;
                }
                attached.session.lock().handle_line(&line)
            }
            Ok(LineRead::Eof) => break,
            Ok(LineRead::TooLong) => {
                let _ = writeln!(writer, "err line exceeds {MAX_LINE_BYTES} bytes");
                break;
            }
            Ok(LineRead::Idle) => {
                let _ = writeln!(writer, "err idle timeout");
                break;
            }
            Err(_) => break,
        };
        let closing = matches!(reply, Reply::Goodbye(_));
        if write_reply(&mut writer, reply).is_err() || closing {
            break;
        }
    }
    pool.detach(&attached.name);
}

fn write_reply(writer: &mut impl Write, reply: Reply) -> std::io::Result<()> {
    match reply {
        Reply::Line(line) | Reply::Goodbye(line) => writeln!(writer, "{line}")?,
        Reply::Payload { head, body } => {
            writeln!(writer, "{head}")?;
            writer.write_all(&body)?;
        }
    }
    writer.flush()
}

/// Read one reply line plus its byte-framed payload (if the head announces
/// one) from a server stream. Shared by [`crate::client`] and tests.
pub fn read_reply(reader: &mut impl BufRead) -> std::io::Result<Option<(String, Option<Vec<u8>>)>> {
    let mut head = String::new();
    if reader.read_line(&mut head)? == 0 {
        return Ok(None);
    }
    let head = head.trim_end_matches(['\n', '\r']).to_string();
    let body = match crate::protocol::payload_len(&head) {
        None => None,
        Some(len) => {
            let mut body = vec![0u8; len];
            reader.read_exact(&mut body)?;
            Some(body)
        }
    };
    Ok(Some((head, body)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn capped_reader_handles_exact_and_oversized_lines() {
        let mut ok = Cursor::new(b"hello world\r\nrest".to_vec());
        let LineRead::Line(line) = read_line_capped(&mut BufReader::new(&mut ok)).unwrap() else {
            panic!("expected line");
        };
        assert_eq!(line, "hello world");

        let oversized = vec![b'x'; MAX_LINE_BYTES + 10];
        let mut reader = BufReader::new(Cursor::new(oversized));
        assert!(matches!(
            read_line_capped(&mut reader).unwrap(),
            LineRead::TooLong
        ));

        let torn = b"no newline here".to_vec();
        let mut reader = BufReader::new(Cursor::new(torn));
        assert!(matches!(
            read_line_capped(&mut reader).unwrap(),
            LineRead::Eof
        ));
    }
}
