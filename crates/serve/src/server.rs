//! The TCP server: listener, shared shard pool, per-connection threads.
//!
//! Concurrency model: plain `std::net` blocking I/O, one thread per
//! connection, with a shared session registry guarded by `parking_lot`
//! mutexes. Each connection owns its shard through an `Arc<Mutex<Session>>`
//! held in the registry; the registry lock is only taken to register and
//! deregister, so sessions never contend with each other on the hot path.
//! `parking_lot` mutexes do not poison, so a panicking connection thread can
//! never wedge the pool for everyone else.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use parking_lot::Mutex;

use crate::clock::ClockMode;
use crate::protocol::{Reply, MAX_LINE_BYTES};
use crate::session::Session;
use crate::shard::{Shard, ShardConfig};

/// Server-wide configuration; every session inherits it.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Registry name of the live policy for every session.
    pub scheduler: String,
    /// Machine size in processors for every session.
    pub machine: u32,
    /// Clock mode for every session.
    pub mode: ClockMode,
    /// Artifact store root drained sessions are published into, if any.
    pub store_dir: Option<PathBuf>,
    /// Maximum number of concurrently connected sessions.
    pub max_sessions: usize,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            scheduler: "fcfs".into(),
            machine: 128,
            mode: ClockMode::Afap,
            store_dir: None,
            max_sessions: 256,
        }
    }
}

/// The shared session registry: one slot per live connection.
struct ShardPool {
    config: ServeConfig,
    sessions: Mutex<HashMap<u64, Arc<Mutex<Session>>>>,
    next_id: Mutex<u64>,
}

impl ShardPool {
    fn new(config: ServeConfig) -> ShardPool {
        ShardPool {
            config,
            sessions: Mutex::new(HashMap::new()),
            next_id: Mutex::new(0),
        }
    }

    /// Number of live sessions.
    fn active(&self) -> usize {
        self.sessions.lock().len()
    }

    /// Register a new session, or explain why one cannot be admitted.
    fn register(&self) -> Result<(u64, Arc<Mutex<Session>>), String> {
        let mut sessions = self.sessions.lock();
        if sessions.len() >= self.config.max_sessions {
            return Err(format!(
                "server at session capacity ({})",
                self.config.max_sessions
            ));
        }
        let id = {
            let mut next = self.next_id.lock();
            *next += 1;
            *next
        };
        let shard_config = ShardConfig {
            scheduler: self.config.scheduler.clone(),
            machine: self.config.machine,
            mode: self.config.mode,
            store_dir: self.config.store_dir.clone(),
        };
        let shard =
            Shard::new(&shard_config, format!("serve-session-{id}")).map_err(|e| e.to_string())?;
        let session = Arc::new(Mutex::new(Session::new(shard)));
        sessions.insert(id, session.clone());
        Ok((id, session))
    }

    fn deregister(&self, id: u64) {
        self.sessions.lock().remove(&id);
    }
}

/// Handle to a running server. Dropping it stops the listener.
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    pool: Arc<ShardPool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the server is listening on (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Number of currently connected sessions.
    pub fn active_sessions(&self) -> usize {
        self.pool.active()
    }

    /// Stop accepting connections and join the accept thread. Connections
    /// already being served keep running on their own threads until their
    /// clients disconnect.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // The accept loop blocks in accept(); poke it with a throwaway
        // connection so it observes the stop flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if self.accept_thread.is_some() {
            self.shutdown();
        }
    }
}

/// Bind `addr` and start serving. Returns once the listener is live; the
/// accept loop and all connection handling run on background threads.
pub fn serve(addr: impl ToSocketAddrs, config: ServeConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let pool = Arc::new(ShardPool::new(config));
    let accept_stop = stop.clone();
    let accept_pool = pool.clone();
    let accept_thread = std::thread::spawn(move || {
        for stream in listener.incoming() {
            if accept_stop.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = stream else { continue };
            let pool = accept_pool.clone();
            std::thread::spawn(move || handle_connection(stream, pool));
        }
    });
    Ok(ServerHandle {
        addr,
        stop,
        pool,
        accept_thread: Some(accept_thread),
    })
}

/// Outcome of reading one request line.
enum LineRead {
    /// A complete line (terminator stripped).
    Line(String),
    /// End of stream. A torn frame (bytes without a final newline) lands
    /// here too: there is no complete request to answer, so the connection
    /// just ends.
    Eof,
    /// The line exceeded [`MAX_LINE_BYTES`] before a newline appeared.
    TooLong,
}

/// Read one `\n`-terminated line without ever buffering more than the cap.
fn read_line_capped(reader: &mut impl BufRead) -> std::io::Result<LineRead> {
    let mut line: Vec<u8> = Vec::new();
    loop {
        let buf = reader.fill_buf()?;
        if buf.is_empty() {
            return Ok(LineRead::Eof);
        }
        match buf.iter().position(|&b| b == b'\n') {
            Some(pos) => {
                line.extend_from_slice(&buf[..pos]);
                reader.consume(pos + 1);
                if line.len() > MAX_LINE_BYTES {
                    return Ok(LineRead::TooLong);
                }
                if line.last() == Some(&b'\r') {
                    line.pop();
                }
                return Ok(LineRead::Line(String::from_utf8_lossy(&line).into_owned()));
            }
            None => {
                let n = buf.len();
                line.extend_from_slice(buf);
                reader.consume(n);
                if line.len() > MAX_LINE_BYTES {
                    return Ok(LineRead::TooLong);
                }
            }
        }
    }
}

/// Serve one connection until the client leaves (or misbehaves fatally).
fn handle_connection(stream: TcpStream, pool: Arc<ShardPool>) {
    // The protocol is lockstep request/reply: without TCP_NODELAY, Nagle's
    // algorithm adds a delayed-ACK round trip to every exchange.
    let _ = stream.set_nodelay(true);
    let mut writer = stream;
    let Ok(read_half) = writer.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let (id, session) = match pool.register() {
        Ok(slot) => slot,
        Err(msg) => {
            let _ = writeln!(writer, "err {msg}");
            return;
        }
    };
    loop {
        let reply = match read_line_capped(&mut reader) {
            Ok(LineRead::Line(line)) => {
                if line.trim().is_empty() {
                    continue;
                }
                session.lock().handle_line(&line)
            }
            Ok(LineRead::Eof) => break,
            Ok(LineRead::TooLong) => {
                let _ = writeln!(writer, "err line exceeds {MAX_LINE_BYTES} bytes");
                break;
            }
            Err(_) => break,
        };
        let closing = matches!(reply, Reply::Goodbye(_));
        if write_reply(&mut writer, reply).is_err() || closing {
            break;
        }
    }
    pool.deregister(id);
}

fn write_reply(writer: &mut impl Write, reply: Reply) -> std::io::Result<()> {
    match reply {
        Reply::Line(line) | Reply::Goodbye(line) => writeln!(writer, "{line}")?,
        Reply::Payload { head, body } => {
            writeln!(writer, "{head}")?;
            writer.write_all(&body)?;
        }
    }
    writer.flush()
}

/// Read one reply line plus its byte-framed payload (if the head announces
/// one) from a server stream. Shared by [`crate::client`] and tests.
pub fn read_reply(reader: &mut impl BufRead) -> std::io::Result<Option<(String, Option<Vec<u8>>)>> {
    let mut head = String::new();
    if reader.read_line(&mut head)? == 0 {
        return Ok(None);
    }
    let head = head.trim_end_matches(['\n', '\r']).to_string();
    let body = match crate::protocol::payload_len(&head) {
        None => None,
        Some(len) => {
            let mut body = vec![0u8; len];
            reader.read_exact(&mut body)?;
            Some(body)
        }
    };
    Ok(Some((head, body)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn capped_reader_handles_exact_and_oversized_lines() {
        let mut ok = Cursor::new(b"hello world\r\nrest".to_vec());
        let LineRead::Line(line) = read_line_capped(&mut BufReader::new(&mut ok)).unwrap() else {
            panic!("expected line");
        };
        assert_eq!(line, "hello world");

        let oversized = vec![b'x'; MAX_LINE_BYTES + 10];
        let mut reader = BufReader::new(Cursor::new(oversized));
        assert!(matches!(
            read_line_capped(&mut reader).unwrap(),
            LineRead::TooLong
        ));

        let torn = b"no newline here".to_vec();
        let mut reader = BufReader::new(Cursor::new(torn));
        assert!(matches!(
            read_line_capped(&mut reader).unwrap(),
            LineRead::Eof
        ));
    }
}
