//! Wire protocol: command parsing and reply framing.
//!
//! The protocol is line-oriented text. Every request is one `\n`-terminated
//! line; every reply is one line starting with `ok` or `err`. Two commands
//! (`trace`, `drain`) follow the reply line with a byte-length-framed payload:
//! the reply carries `bytes=<n>` and exactly `n` payload bytes follow it on
//! the stream. See the crate-level docs for the full grammar.

use std::fmt;

/// Version of the wire protocol. Clients announce it in the hello line
/// (`hello psbench-serve/1`); the server rejects any other version.
pub const PROTOCOL_VERSION: u32 = 1;

/// Hard cap on the length of a single request line, in bytes. Longer lines
/// are rejected (the connection is closed) without buffering the remainder,
/// so an unframed flood cannot exhaust server memory.
pub const MAX_LINE_BYTES: usize = 64 * 1024;

/// A parsed request line.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `hello psbench-serve/<version>` — opens the session.
    Hello {
        /// Protocol version announced by the client.
        version: u32,
    },
    /// `submit id=<n> runtime=<secs> procs=<n> [submit=<secs>] [estimate=<secs>] [user=<n>]`.
    Submit {
        /// Job id; must be unique within the session.
        id: u64,
        /// Requested submit instant (integer seconds of session time).
        /// Omitted: "now" (the session clock, or the last submit instant in
        /// as-fast-as-possible mode).
        submit: Option<i64>,
        /// Actual runtime in seconds.
        runtime: i64,
        /// Processors requested.
        procs: u32,
        /// User runtime estimate in seconds (defaults to `runtime`).
        estimate: Option<i64>,
        /// Owning user id, for per-user metrics.
        user: Option<u32>,
    },
    /// `cancel id=<n>` (or `cancel <n>`).
    Cancel {
        /// Job to cancel.
        id: u64,
    },
    /// `query queue` — live counters of the session shard.
    QueryQueue,
    /// `query job <id>` — state of one job.
    QueryJob {
        /// Job to look up.
        id: u64,
    },
    /// `whatif <id> under <scheduler>` — predicted start from a cloned engine.
    Whatif {
        /// Job the prediction is about.
        id: u64,
        /// Registry name of the policy to probe under.
        scheduler: String,
    },
    /// `advance to=<secs>` (or `advance <secs>`) — release session time.
    Advance {
        /// Target session instant, integer seconds.
        to: i64,
    },
    /// `trace` — canonical SWF text of everything submitted so far.
    Trace,
    /// `drain` — run the engine to completion and return the encoded result.
    Drain,
    /// `bye` — close the connection.
    Bye,
}

/// A reply to write back to the client.
#[derive(Debug, Clone, PartialEq)]
pub enum Reply {
    /// A single `ok …` or `err …` line.
    Line(String),
    /// A reply line followed by a byte-length-framed payload. The head line
    /// must already carry `bytes=<n>` with `n == body.len()`.
    Payload {
        /// The `ok … bytes=<n>` head line (without trailing newline).
        head: String,
        /// Exactly the payload bytes announced by the head line.
        body: Vec<u8>,
    },
    /// A final line after which the server closes the connection cleanly.
    Goodbye(String),
}

impl Reply {
    /// Build an `err …` line reply. The message is flattened to one line.
    pub fn err(msg: impl fmt::Display) -> Reply {
        Reply::Line(format!("err {}", one_line(&msg.to_string())))
    }
}

/// Collapse newlines so an error message can never break line framing.
fn one_line(s: &str) -> String {
    s.replace(['\n', '\r'], " ")
}

/// Extract the `bytes=<n>` payload length announced by a reply head line,
/// if any. Clients use this to know how many raw bytes follow the line.
pub fn payload_len(head: &str) -> Option<usize> {
    head.split_whitespace()
        .find_map(|tok| tok.strip_prefix("bytes="))
        .and_then(|v| v.parse().ok())
}

/// One `key=value` token.
struct KvArgs<'a> {
    pairs: Vec<(&'a str, &'a str)>,
}

impl<'a> KvArgs<'a> {
    fn parse(tokens: &[&'a str], allowed: &[&str]) -> Result<KvArgs<'a>, String> {
        let mut pairs = Vec::with_capacity(tokens.len());
        for tok in tokens {
            let (k, v) = tok
                .split_once('=')
                .ok_or_else(|| format!("expected key=value, got {tok:?}"))?;
            if !allowed.contains(&k) {
                return Err(format!(
                    "unknown argument {k:?}; expected one of: {}",
                    allowed.join(", ")
                ));
            }
            if pairs.iter().any(|(seen, _)| *seen == k) {
                return Err(format!("duplicate argument {k:?}"));
            }
            pairs.push((k, v));
        }
        Ok(KvArgs { pairs })
    }

    fn get(&self, key: &str) -> Option<&'a str> {
        self.pairs.iter().find(|(k, _)| *k == key).map(|(_, v)| *v)
    }

    fn required<T: std::str::FromStr>(&self, key: &str) -> Result<T, String> {
        let raw = self
            .get(key)
            .ok_or_else(|| format!("missing required argument {key}="))?;
        raw.parse()
            .map_err(|_| format!("bad value for {key}: {raw:?}"))
    }

    fn optional<T: std::str::FromStr>(&self, key: &str) -> Result<Option<T>, String> {
        match self.get(key) {
            None => Ok(None),
            Some(raw) => raw
                .parse()
                .map(Some)
                .map_err(|_| format!("bad value for {key}: {raw:?}")),
        }
    }
}

/// Parse one request line into a [`Command`].
///
/// Errors are human-readable single-line messages suitable for an `err` reply.
pub fn parse_command(line: &str) -> Result<Command, String> {
    let tokens: Vec<&str> = line.split_whitespace().collect();
    let (&head, rest) = tokens
        .split_first()
        .ok_or_else(|| "empty command".to_string())?;
    match head {
        "hello" => {
            let [ident] = rest else {
                return Err("usage: hello psbench-serve/<version>".into());
            };
            let version = ident
                .strip_prefix("psbench-serve/")
                .and_then(|v| v.parse().ok())
                .ok_or_else(|| format!("bad hello identifier {ident:?}"))?;
            Ok(Command::Hello { version })
        }
        "submit" => {
            let kv = KvArgs::parse(
                rest,
                &["id", "submit", "runtime", "procs", "estimate", "user"],
            )?;
            Ok(Command::Submit {
                id: kv.required("id")?,
                submit: kv.optional("submit")?,
                runtime: kv.required("runtime")?,
                procs: kv.required("procs")?,
                estimate: kv.optional("estimate")?,
                user: kv.optional("user")?,
            })
        }
        "cancel" => {
            let id = match rest {
                [one] => one
                    .strip_prefix("id=")
                    .unwrap_or(one)
                    .parse()
                    .map_err(|_| format!("bad job id {one:?}"))?,
                _ => return Err("usage: cancel id=<job>".into()),
            };
            Ok(Command::Cancel { id })
        }
        "query" => match rest {
            ["queue"] => Ok(Command::QueryQueue),
            ["job", id] => {
                let id = id
                    .strip_prefix("id=")
                    .unwrap_or(id)
                    .parse()
                    .map_err(|_| format!("bad job id {id:?}"))?;
                Ok(Command::QueryJob { id })
            }
            _ => Err("usage: query queue | query job <id>".into()),
        },
        "whatif" => match rest {
            [id, "under", scheduler] => {
                let id = id.parse().map_err(|_| format!("bad job id {id:?}"))?;
                Ok(Command::Whatif {
                    id,
                    scheduler: scheduler.to_string(),
                })
            }
            _ => Err("usage: whatif <job> under <scheduler>".into()),
        },
        "advance" => {
            let to = match rest {
                [one] => one
                    .strip_prefix("to=")
                    .unwrap_or(one)
                    .parse()
                    .map_err(|_| format!("bad advance target {one:?}"))?,
                _ => return Err("usage: advance to=<seconds>".into()),
            };
            Ok(Command::Advance { to })
        }
        "trace" if rest.is_empty() => Ok(Command::Trace),
        "drain" if rest.is_empty() => Ok(Command::Drain),
        "bye" if rest.is_empty() => Ok(Command::Bye),
        _ => Err(format!(
            "unknown command {head:?}; commands: hello, submit, cancel, query, whatif, advance, trace, drain, bye"
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_full_grammar() {
        assert_eq!(
            parse_command("hello psbench-serve/1").unwrap(),
            Command::Hello { version: 1 }
        );
        assert_eq!(
            parse_command("submit id=7 submit=100 runtime=60 procs=4 estimate=90 user=3").unwrap(),
            Command::Submit {
                id: 7,
                submit: Some(100),
                runtime: 60,
                procs: 4,
                estimate: Some(90),
                user: Some(3),
            }
        );
        assert_eq!(
            parse_command("submit id=1 runtime=5 procs=1").unwrap(),
            Command::Submit {
                id: 1,
                submit: None,
                runtime: 5,
                procs: 1,
                estimate: None,
                user: None,
            }
        );
        assert_eq!(
            parse_command("cancel id=9").unwrap(),
            Command::Cancel { id: 9 }
        );
        assert_eq!(
            parse_command("cancel 9").unwrap(),
            Command::Cancel { id: 9 }
        );
        assert_eq!(parse_command("query queue").unwrap(), Command::QueryQueue);
        assert_eq!(
            parse_command("query job 4").unwrap(),
            Command::QueryJob { id: 4 }
        );
        assert_eq!(
            parse_command("whatif 4 under easy").unwrap(),
            Command::Whatif {
                id: 4,
                scheduler: "easy".into()
            }
        );
        assert_eq!(
            parse_command("advance to=500").unwrap(),
            Command::Advance { to: 500 }
        );
        assert_eq!(parse_command("trace").unwrap(), Command::Trace);
        assert_eq!(parse_command("drain").unwrap(), Command::Drain);
        assert_eq!(parse_command("bye").unwrap(), Command::Bye);
    }

    #[test]
    fn rejects_garbage_with_single_line_messages() {
        for bad in [
            "",
            "frobnicate",
            "hello",
            "hello otherproto/1",
            "submit id=1 runtime=x procs=1",
            "submit id=1 runtime=5",
            "submit id=1 runtime=5 procs=1 color=red",
            "submit id=1 id=2 runtime=5 procs=1",
            "whatif 3 over easy",
            "cancel",
            "advance",
            "query",
            "query job",
            "trace now",
        ] {
            let err = parse_command(bad).unwrap_err();
            assert!(!err.contains('\n'), "multi-line error for {bad:?}");
        }
    }

    #[test]
    fn unknown_command_error_lists_the_verbs() {
        let err = parse_command("launch missiles").unwrap_err();
        for verb in ["submit", "cancel", "whatif", "drain"] {
            assert!(err.contains(verb));
        }
    }

    #[test]
    fn payload_len_reads_bytes_token() {
        assert_eq!(payload_len("ok trace bytes=120 records=3"), Some(120));
        assert_eq!(payload_len("ok drain scheduler=fcfs bytes=9"), Some(9));
        assert_eq!(payload_len("ok submit id=1"), None);
    }

    #[test]
    fn err_replies_never_contain_newlines() {
        let Reply::Line(line) = Reply::err("top\nbottom") else {
            panic!("expected line reply");
        };
        assert_eq!(line, "err top bottom");
    }
}
