//! Wire protocol: command parsing and reply framing.
//!
//! The protocol is line-oriented text. Every request is one `\n`-terminated
//! line; every reply is one line starting with `ok` or `err`. Two commands
//! (`trace`, `drain`) follow the reply line with a byte-length-framed payload:
//! the reply carries `bytes=<n>` and exactly `n` payload bytes follow it on
//! the stream. See the crate-level docs for the full grammar.

use std::fmt;

/// Version of the wire protocol. Clients announce it in the hello line
/// (`hello psbench-serve/1`); the server rejects any other version.
pub const PROTOCOL_VERSION: u32 = 1;

/// Hard cap on the length of a single request line, in bytes. Longer lines
/// are rejected (the connection is closed) without buffering the remainder,
/// so an unframed flood cannot exhaust server memory.
pub const MAX_LINE_BYTES: usize = 64 * 1024;

/// Maximum length of a client-chosen session name, in bytes.
pub const MAX_SESSION_NAME: usize = 64;

/// Whether `name` is a valid session name: 1–64 characters drawn from
/// `[A-Za-z0-9._-]`. The restriction keeps names safe to embed in journal
/// file names and reply lines.
pub fn valid_session_name(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= MAX_SESSION_NAME
        && name
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'.' || b == b'_' || b == b'-')
}

/// A parsed request line.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `hello psbench-serve/<version> [session=<name>]` — opens (or, with a
    /// name, attaches to) a session.
    Hello {
        /// Protocol version announced by the client.
        version: u32,
        /// Session to attach to. Omitted: the server generates a name. A
        /// named session that crashed or detached can be re-attached — with
        /// `--state-dir` on the server, even across a server restart.
        session: Option<String>,
    },
    /// `submit id=<n> runtime=<secs> procs=<n> [submit=<secs>] [estimate=<secs>] [user=<n>] [seq=<n>]`.
    Submit {
        /// Job id; must be unique within the session.
        id: u64,
        /// Requested submit instant (integer seconds of session time).
        /// Omitted: "now" (the session clock, or the last submit instant in
        /// as-fast-as-possible mode).
        submit: Option<i64>,
        /// Actual runtime in seconds.
        runtime: i64,
        /// Processors requested.
        procs: u32,
        /// User runtime estimate in seconds (defaults to `runtime`).
        estimate: Option<i64>,
        /// Owning user id, for per-user metrics.
        user: Option<u32>,
        /// Client-chosen command sequence number (see [`Command::seq`]).
        seq: Option<u64>,
    },
    /// `cancel id=<n> [seq=<n>]` (or `cancel <n>`).
    Cancel {
        /// Job to cancel.
        id: u64,
        /// Client-chosen command sequence number (see [`Command::seq`]).
        seq: Option<u64>,
    },
    /// `query queue` — live counters of the session shard.
    QueryQueue,
    /// `query job <id>` — state of one job.
    QueryJob {
        /// Job to look up.
        id: u64,
    },
    /// `whatif <id> under <scheduler>` — predicted start from a cloned engine.
    Whatif {
        /// Job the prediction is about.
        id: u64,
        /// Registry name of the policy to probe under.
        scheduler: String,
    },
    /// `advance to=<secs> [seq=<n>]` (or `advance <secs>`) — release session
    /// time.
    Advance {
        /// Target session instant, integer seconds.
        to: i64,
        /// Client-chosen command sequence number (see [`Command::seq`]).
        seq: Option<u64>,
    },
    /// `trace` — canonical SWF text of everything submitted so far.
    Trace,
    /// `drain [seq=<n>]` — run the engine to completion and return the
    /// encoded result.
    Drain {
        /// Client-chosen command sequence number (see [`Command::seq`]).
        seq: Option<u64>,
    },
    /// `bye` — close the connection.
    Bye,
}

impl Command {
    /// The `seq=` number carried by a mutating command, if any.
    ///
    /// Sequence numbers make mutating commands **idempotent**: each must be
    /// strictly greater than the last one the session applied. Re-sending the
    /// session's last applied `seq` replays the cached reply without applying
    /// the command again (safe resubmission after a lost reply); a smaller
    /// `seq` is refused as stale. Commands without `seq=` are assigned the
    /// next number implicitly (at-most-once only per connection).
    pub fn seq(&self) -> Option<u64> {
        match self {
            Command::Submit { seq, .. }
            | Command::Cancel { seq, .. }
            | Command::Advance { seq, .. }
            | Command::Drain { seq } => *seq,
            _ => None,
        }
    }
}

/// A reply to write back to the client.
#[derive(Debug, Clone, PartialEq)]
pub enum Reply {
    /// A single `ok …` or `err …` line.
    Line(String),
    /// A reply line followed by a byte-length-framed payload. The head line
    /// must already carry `bytes=<n>` with `n == body.len()`.
    Payload {
        /// The `ok … bytes=<n>` head line (without trailing newline).
        head: String,
        /// Exactly the payload bytes announced by the head line.
        body: Vec<u8>,
    },
    /// A final line after which the server closes the connection cleanly.
    Goodbye(String),
}

impl Reply {
    /// Build an `err …` line reply. The message is flattened to one line.
    pub fn err(msg: impl fmt::Display) -> Reply {
        Reply::Line(format!("err {}", one_line(&msg.to_string())))
    }
}

/// Collapse newlines so an error message can never break line framing.
fn one_line(s: &str) -> String {
    s.replace(['\n', '\r'], " ")
}

/// Extract the `bytes=<n>` payload length announced by a reply head line,
/// if any. Clients use this to know how many raw bytes follow the line.
pub fn payload_len(head: &str) -> Option<usize> {
    head.split_whitespace()
        .find_map(|tok| tok.strip_prefix("bytes="))
        .and_then(|v| v.parse().ok())
}

/// One `key=value` token.
struct KvArgs<'a> {
    pairs: Vec<(&'a str, &'a str)>,
}

impl<'a> KvArgs<'a> {
    fn parse(tokens: &[&'a str], allowed: &[&str]) -> Result<KvArgs<'a>, String> {
        let mut pairs = Vec::with_capacity(tokens.len());
        for tok in tokens {
            let (k, v) = tok
                .split_once('=')
                .ok_or_else(|| format!("expected key=value, got {tok:?}"))?;
            if !allowed.contains(&k) {
                return Err(format!(
                    "unknown argument {k:?}; expected one of: {}",
                    allowed.join(", ")
                ));
            }
            if pairs.iter().any(|(seen, _)| *seen == k) {
                return Err(format!("duplicate argument {k:?}"));
            }
            pairs.push((k, v));
        }
        Ok(KvArgs { pairs })
    }

    fn get(&self, key: &str) -> Option<&'a str> {
        self.pairs.iter().find(|(k, _)| *k == key).map(|(_, v)| *v)
    }

    fn required<T: std::str::FromStr>(&self, key: &str) -> Result<T, String> {
        let raw = self
            .get(key)
            .ok_or_else(|| format!("missing required argument {key}="))?;
        raw.parse()
            .map_err(|_| format!("bad value for {key}: {raw:?}"))
    }

    fn optional<T: std::str::FromStr>(&self, key: &str) -> Result<Option<T>, String> {
        match self.get(key) {
            None => Ok(None),
            Some(raw) => raw
                .parse()
                .map(Some)
                .map_err(|_| format!("bad value for {key}: {raw:?}")),
        }
    }
}

/// Parse one request line into a [`Command`].
///
/// Errors are human-readable single-line messages suitable for an `err` reply.
pub fn parse_command(line: &str) -> Result<Command, String> {
    let tokens: Vec<&str> = line.split_whitespace().collect();
    let (&head, rest) = tokens
        .split_first()
        .ok_or_else(|| "empty command".to_string())?;
    match head {
        "hello" => {
            let Some((&ident, rest)) = rest.split_first() else {
                return Err("usage: hello psbench-serve/<version> [session=<name>]".into());
            };
            let version = ident
                .strip_prefix("psbench-serve/")
                .and_then(|v| v.parse().ok())
                .ok_or_else(|| format!("bad hello identifier {ident:?}"))?;
            let kv = KvArgs::parse(rest, &["session"])?;
            let session = kv.get("session").map(str::to_string);
            if let Some(name) = &session {
                if !valid_session_name(name) {
                    return Err(format!(
                        "bad session name {name:?}: 1-{MAX_SESSION_NAME} chars of [A-Za-z0-9._-]"
                    ));
                }
            }
            Ok(Command::Hello { version, session })
        }
        "submit" => {
            let kv = KvArgs::parse(
                rest,
                &["id", "submit", "runtime", "procs", "estimate", "user", "seq"],
            )?;
            Ok(Command::Submit {
                id: kv.required("id")?,
                submit: kv.optional("submit")?,
                runtime: kv.required("runtime")?,
                procs: kv.required("procs")?,
                estimate: kv.optional("estimate")?,
                user: kv.optional("user")?,
                seq: kv.optional("seq")?,
            })
        }
        "cancel" => match rest {
            [one] if !one.contains('=') || one.starts_with("id=") => {
                let id = one
                    .strip_prefix("id=")
                    .unwrap_or(one)
                    .parse()
                    .map_err(|_| format!("bad job id {one:?}"))?;
                Ok(Command::Cancel { id, seq: None })
            }
            _ => {
                let kv = KvArgs::parse(rest, &["id", "seq"])?;
                Ok(Command::Cancel {
                    id: kv.required("id")?,
                    seq: kv.optional("seq")?,
                })
            }
        },
        "query" => match rest {
            ["queue"] => Ok(Command::QueryQueue),
            ["job", id] => {
                let id = id
                    .strip_prefix("id=")
                    .unwrap_or(id)
                    .parse()
                    .map_err(|_| format!("bad job id {id:?}"))?;
                Ok(Command::QueryJob { id })
            }
            _ => Err("usage: query queue | query job <id>".into()),
        },
        "whatif" => match rest {
            [id, "under", scheduler] => {
                let id = id.parse().map_err(|_| format!("bad job id {id:?}"))?;
                Ok(Command::Whatif {
                    id,
                    scheduler: scheduler.to_string(),
                })
            }
            _ => Err("usage: whatif <job> under <scheduler>".into()),
        },
        "advance" => match rest {
            [one] if !one.contains('=') || one.starts_with("to=") => {
                let to = one
                    .strip_prefix("to=")
                    .unwrap_or(one)
                    .parse()
                    .map_err(|_| format!("bad advance target {one:?}"))?;
                Ok(Command::Advance { to, seq: None })
            }
            _ => {
                let kv = KvArgs::parse(rest, &["to", "seq"])?;
                Ok(Command::Advance {
                    to: kv.required("to")?,
                    seq: kv.optional("seq")?,
                })
            }
        },
        "trace" if rest.is_empty() => Ok(Command::Trace),
        "drain" => {
            let kv = KvArgs::parse(rest, &["seq"])?;
            Ok(Command::Drain {
                seq: kv.optional("seq")?,
            })
        }
        "bye" if rest.is_empty() => Ok(Command::Bye),
        _ => Err(format!(
            "unknown command {head:?}; commands: hello, submit, cancel, query, whatif, advance, trace, drain, bye"
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_full_grammar() {
        assert_eq!(
            parse_command("hello psbench-serve/1").unwrap(),
            Command::Hello {
                version: 1,
                session: None
            }
        );
        assert_eq!(
            parse_command("hello psbench-serve/1 session=night-shift.2").unwrap(),
            Command::Hello {
                version: 1,
                session: Some("night-shift.2".into())
            }
        );
        assert_eq!(
            parse_command("submit id=7 submit=100 runtime=60 procs=4 estimate=90 user=3 seq=12")
                .unwrap(),
            Command::Submit {
                id: 7,
                submit: Some(100),
                runtime: 60,
                procs: 4,
                estimate: Some(90),
                user: Some(3),
                seq: Some(12),
            }
        );
        assert_eq!(
            parse_command("submit id=1 runtime=5 procs=1").unwrap(),
            Command::Submit {
                id: 1,
                submit: None,
                runtime: 5,
                procs: 1,
                estimate: None,
                user: None,
                seq: None,
            }
        );
        assert_eq!(
            parse_command("cancel id=9").unwrap(),
            Command::Cancel { id: 9, seq: None }
        );
        assert_eq!(
            parse_command("cancel 9").unwrap(),
            Command::Cancel { id: 9, seq: None }
        );
        assert_eq!(
            parse_command("cancel id=9 seq=4").unwrap(),
            Command::Cancel {
                id: 9,
                seq: Some(4)
            }
        );
        assert_eq!(parse_command("query queue").unwrap(), Command::QueryQueue);
        assert_eq!(
            parse_command("query job 4").unwrap(),
            Command::QueryJob { id: 4 }
        );
        assert_eq!(
            parse_command("whatif 4 under easy").unwrap(),
            Command::Whatif {
                id: 4,
                scheduler: "easy".into()
            }
        );
        assert_eq!(
            parse_command("advance to=500").unwrap(),
            Command::Advance { to: 500, seq: None }
        );
        assert_eq!(
            parse_command("advance to=500 seq=9").unwrap(),
            Command::Advance {
                to: 500,
                seq: Some(9)
            }
        );
        assert_eq!(parse_command("trace").unwrap(), Command::Trace);
        assert_eq!(
            parse_command("drain").unwrap(),
            Command::Drain { seq: None }
        );
        assert_eq!(
            parse_command("drain seq=3").unwrap(),
            Command::Drain { seq: Some(3) }
        );
        assert_eq!(parse_command("bye").unwrap(), Command::Bye);
    }

    #[test]
    fn session_names_are_validated() {
        assert!(valid_session_name("a"));
        assert!(valid_session_name("night-shift.2_x"));
        assert!(!valid_session_name(""));
        assert!(!valid_session_name("has space"));
        assert!(!valid_session_name("sneaky/../path"));
        assert!(!valid_session_name(&"x".repeat(MAX_SESSION_NAME + 1)));
        assert!(parse_command("hello psbench-serve/1 session=bad/name").is_err());
    }

    #[test]
    fn rejects_garbage_with_single_line_messages() {
        for bad in [
            "",
            "frobnicate",
            "hello",
            "hello otherproto/1",
            "submit id=1 runtime=x procs=1",
            "submit id=1 runtime=5",
            "submit id=1 runtime=5 procs=1 color=red",
            "submit id=1 id=2 runtime=5 procs=1",
            "whatif 3 over easy",
            "cancel",
            "advance",
            "query",
            "query job",
            "trace now",
        ] {
            let err = parse_command(bad).unwrap_err();
            assert!(!err.contains('\n'), "multi-line error for {bad:?}");
        }
    }

    #[test]
    fn unknown_command_error_lists_the_verbs() {
        let err = parse_command("launch missiles").unwrap_err();
        for verb in ["submit", "cancel", "whatif", "drain"] {
            assert!(err.contains(verb));
        }
    }

    #[test]
    fn payload_len_reads_bytes_token() {
        assert_eq!(payload_len("ok trace bytes=120 records=3"), Some(120));
        assert_eq!(payload_len("ok drain scheduler=fcfs bytes=9"), Some(9));
        assert_eq!(payload_len("ok submit id=1"), None);
    }

    #[test]
    fn err_replies_never_contain_newlines() {
        let Reply::Line(line) = Reply::err("top\nbottom") else {
            panic!("expected line reply");
        };
        assert_eq!(line, "err top bottom");
    }
}
