//! Engine shards: one live simulation per client session.
//!
//! A [`Shard`] wraps an online [`Simulation`] together with its policy
//! instance, the session clock, and the canonical SWF record of everything
//! submitted so far. All mutation goes through the shard, which maintains the
//! invariants the online engine needs (monotone release frontier, integer
//! submit instants so the exported trace round-trips exactly) and keeps the
//! exported trace in lockstep with the engine.
//!
//! The shard's mutating surface is split in two layers so sessions can be
//! write-ahead journaled:
//!
//! * **resolve** — [`Shard::resolve_time`] / [`Shard::wall_now`] turn a
//!   client request into the exact instant it lands at (folding in the wall
//!   clock, the session frontier, and the engine's released frontier);
//! * **apply** — [`Shard::submit_at`], [`Shard::cancel_at`] and
//!   [`Shard::advance_to`] take only resolved values and route them through
//!   [`Simulation::apply`], so replaying a journal of resolved commands
//!   rebuilds the engine deterministically, independent of wall time.
//!
//! The convenience wrappers ([`Shard::submit`], [`Shard::cancel`],
//! [`Shard::advance`]) compose the two for unjournaled (in-process) use.

use std::path::PathBuf;

use psbench_core::trace_cell_key;
use psbench_sched::{by_name, probe_start, Prediction, ProbeError, UnknownScheduler};
use psbench_sim::{JobState, OnlineOp, Scheduler, SimConfig, SimJob, Simulation, SimulationResult};
use psbench_store::{key_hex, ArtifactStore};
use psbench_swf::{write_string, SwfHeader, SwfLog, SwfRecord, SwfRecordBuilder, FORMAT_VERSION};

use crate::clock::{ClockMode, SessionClock};

/// Configuration a new shard is built from (one per session, derived from the
/// server-wide [`crate::server::ServeConfig`]).
#[derive(Debug, Clone)]
pub struct ShardConfig {
    /// Registry name of the live policy.
    pub scheduler: String,
    /// Machine size in processors.
    pub machine: u32,
    /// Clock mode of the session.
    pub mode: ClockMode,
    /// Artifact store root to publish drained sessions into, if any.
    pub store_dir: Option<PathBuf>,
}

/// A live per-session scheduling engine.
pub struct Shard {
    engine: Option<Simulation>,
    policy: Box<dyn Scheduler>,
    scheduler_name: String,
    machine: u32,
    clock: SessionClock,
    records: Vec<SwfRecord>,
    /// Largest submit/advance instant seen so far: the session's released
    /// frontier in integer seconds.
    session_time: i64,
    store_dir: Option<PathBuf>,
    session_name: String,
    /// A finished result whose store publication failed: kept so `drain` is
    /// retryable instead of silently losing the run.
    pending_drain: Option<SimulationResult>,
}

/// The outcome of draining a shard: the completed run plus, when a store was
/// configured, the hex cell key the result was published under.
pub struct Drained {
    /// The completed simulation result.
    pub result: SimulationResult,
    /// Hex cell key in the artifact store, if publishing was configured.
    pub stored: Option<String>,
}

impl Shard {
    /// Build a fresh shard: a new online engine plus a new policy instance.
    pub fn new(config: &ShardConfig, session_name: String) -> Result<Shard, UnknownScheduler> {
        let mut policy = by_name(&config.scheduler, config.machine)?;
        let mut engine = Simulation::new_online(SimConfig::new(config.machine));
        engine.begin(policy.as_mut());
        Ok(Shard {
            engine: Some(engine),
            policy,
            scheduler_name: config.scheduler.clone(),
            machine: config.machine,
            clock: SessionClock::new(config.mode),
            records: Vec::new(),
            session_time: 0,
            store_dir: config.store_dir.clone(),
            session_name,
            pending_drain: None,
        })
    }

    /// Registry name of the live policy.
    pub fn scheduler_name(&self) -> &str {
        &self.scheduler_name
    }

    /// Machine size in processors.
    pub fn machine(&self) -> u32 {
        self.machine
    }

    /// Clock mode of the session.
    pub fn mode(&self) -> ClockMode {
        self.clock.mode()
    }

    /// True once the session has been fully drained (result produced and,
    /// when configured, published).
    pub fn drained(&self) -> bool {
        self.engine.is_none() && self.pending_drain.is_none()
    }

    /// Restart the wall-clock anchor in `mode`. Called after journal replay:
    /// the engine state replays deterministically, and the wall clock —
    /// which is *not* state — re-anchors at the recovery instant.
    pub fn reanchor_clock(&mut self, mode: ClockMode) {
        self.clock = SessionClock::new(mode);
    }

    fn engine(&self) -> Result<&Simulation, String> {
        match self.engine.as_ref() {
            Some(engine) => Ok(engine),
            None => Err("session already drained".into()),
        }
    }

    /// The wall-clock instant in session seconds, or `None` in
    /// as-fast-as-possible mode. This is the resolved `at=` a journaled
    /// cancel carries.
    pub fn wall_now(&self) -> Option<f64> {
        self.clock.wall_seconds()
    }

    /// The instant a command lands at: the requested time (if any) clamped so
    /// session time never runs backwards, never behind the wall clock in
    /// `real`/`scaled` modes, and never inside the engine's already-released
    /// timeline (which queries may have pushed to the wall clock).
    pub fn resolve_time(&self, requested: Option<i64>) -> i64 {
        let wall = self
            .clock
            .wall_seconds()
            .map(|w| w.floor() as i64)
            .unwrap_or(0);
        let released = self
            .engine
            .as_ref()
            .map(|e| e.released().ceil() as i64)
            .unwrap_or(0);
        requested
            .unwrap_or(0)
            .max(wall)
            .max(self.session_time)
            .max(released)
    }

    /// In wall-driven modes, let the engine catch up to the wall clock before
    /// answering a query — otherwise the answer would be stale by however long
    /// the client was silent. No-op in as-fast-as-possible mode. Query-time
    /// catch-up is never journaled: any state it creates is subsumed by the
    /// next mutating command's resolved instant (the wall clock is monotone),
    /// so replay converges on the same engine.
    fn catch_up(&mut self) {
        if let Some(wall) = self.clock.wall_seconds() {
            if let (Some(engine), policy) = (self.engine.as_mut(), self.policy.as_mut()) {
                let _ = engine.apply(policy, OnlineOp::Advance(wall));
            }
        }
    }

    /// Validate the client-supplied submit fields (the checks that do not
    /// need the engine). Kept separate so sessions can refuse bad input
    /// before journaling anything.
    pub fn validate_submit(
        submit: Option<i64>,
        runtime: i64,
        procs: u32,
        estimate: Option<i64>,
    ) -> Result<(), String> {
        if runtime < 0 {
            return Err(format!("runtime must be >= 0, got {runtime}"));
        }
        if procs == 0 {
            return Err("procs must be >= 1".into());
        }
        if let Some(est) = estimate {
            if est < 0 {
                return Err(format!("estimate must be >= 0, got {est}"));
            }
        }
        if let Some(req) = submit {
            if req < 0 {
                return Err(format!("submit must be >= 0, got {req}"));
            }
        }
        Ok(())
    }

    /// Submit one job. Returns the effective submit instant.
    pub fn submit(
        &mut self,
        id: u64,
        submit: Option<i64>,
        runtime: i64,
        procs: u32,
        estimate: Option<i64>,
        user: Option<u32>,
    ) -> Result<i64, String> {
        Self::validate_submit(submit, runtime, procs, estimate)?;
        if self.engine.is_none() {
            return Err("session already drained".into());
        }
        let t = self.resolve_time(submit);
        self.submit_at(id, t, runtime, procs, estimate.unwrap_or(runtime), user)
    }

    /// Submit one job at the exact, already-resolved instant `t` with the
    /// already-resolved estimate. This is the replayable half of `submit`:
    /// it consults nothing but its arguments and the engine.
    pub fn submit_at(
        &mut self,
        id: u64,
        t: i64,
        runtime: i64,
        procs: u32,
        estimate: i64,
        user: Option<u32>,
    ) -> Result<i64, String> {
        if runtime < 0 || t < 0 || estimate < 0 || procs == 0 {
            return Err("invalid resolved submit".into());
        }
        let mut builder = SwfRecordBuilder::new(id, t)
            .run_time(runtime)
            .allocated_procs(procs)
            .requested_time(estimate);
        if let Some(user) = user {
            builder = builder.user_id(user);
        }
        let record = builder.build();
        let job = SimJob::from_swf(&record).ok_or("record does not describe a runnable job")?;
        let engine = match self.engine.as_mut() {
            Some(engine) => engine,
            None => return Err("session already drained".into()),
        };
        let policy = self.policy.as_mut();
        engine
            .apply(policy, OnlineOp::Advance(t as f64))
            .map_err(|e| e.to_string())?;
        engine
            .apply(policy, OnlineOp::Submit(job))
            .map_err(|e| e.to_string())?;
        self.records.push(record);
        self.session_time = t;
        Ok(t)
    }

    /// Cancel a job that has not started yet.
    pub fn cancel(&mut self, id: u64) -> Result<(), String> {
        self.cancel_at(id, self.wall_now())
    }

    /// Cancel `id` at the already-resolved wall instant `at` (`None` in
    /// as-fast-as-possible mode). The replayable half of `cancel`.
    pub fn cancel_at(&mut self, id: u64, at: Option<f64>) -> Result<(), String> {
        let engine = match self.engine.as_mut() {
            Some(engine) => engine,
            None => return Err("session already drained".into()),
        };
        let policy = self.policy.as_mut();
        if let Some(at) = at {
            engine
                .apply(policy, OnlineOp::Advance(at))
                .map_err(|e| e.to_string())?;
        }
        engine
            .apply(policy, OnlineOp::Cancel(id))
            .map_err(|e| e.to_string())
    }

    /// Release session time up to `to`. Returns the engine's resulting clock.
    pub fn advance(&mut self, to: i64) -> Result<f64, String> {
        if to < 0 {
            return Err(format!("advance target must be >= 0, got {to}"));
        }
        if self.engine.is_none() {
            return Err("session already drained".into());
        }
        let t = self.resolve_time(Some(to));
        self.advance_to(t)
    }

    /// Release session time up to the exact, already-resolved instant `t`.
    /// The replayable half of `advance`.
    pub fn advance_to(&mut self, t: i64) -> Result<f64, String> {
        if t < 0 {
            return Err(format!("advance target must be >= 0, got {t}"));
        }
        let policy = self.policy.as_mut();
        let engine = match self.engine.as_mut() {
            Some(engine) => engine,
            None => return Err("session already drained".into()),
        };
        engine
            .apply(policy, OnlineOp::Advance(t as f64))
            .map_err(|e| e.to_string())?;
        self.session_time = self.session_time.max(t);
        Ok(engine.now())
    }

    /// Live counters: (now, released, queued, running, finished, used procs).
    pub fn queue_stats(&mut self) -> Result<(f64, f64, usize, usize, usize, f64), String> {
        self.catch_up();
        let engine = self.engine()?;
        Ok((
            engine.now(),
            engine.released(),
            engine.queue_len(),
            engine.running_len(),
            engine.finished_len(),
            engine.used_capacity(),
        ))
    }

    /// State of one job, if the session knows it.
    pub fn job_state(&mut self, id: u64) -> Result<Option<JobState>, String> {
        self.catch_up();
        Ok(self.engine()?.job_state(id))
    }

    /// Predicted start of `id` under `scheduler`, answered from a cloned
    /// engine — the live engine and policy are not perturbed.
    pub fn whatif(
        &mut self,
        id: u64,
        scheduler: &str,
    ) -> Result<Result<Prediction, ProbeError>, String> {
        self.catch_up();
        Ok(probe_start(self.engine()?, id, scheduler))
    }

    /// The canonical SWF log of everything submitted so far. `MaxNodes` is
    /// set to the session machine size so an offline `psbench simulate` of
    /// this trace runs on the same machine.
    pub fn log(&self) -> SwfLog {
        let header = SwfHeader {
            computer: Some("psbench-serve".into()),
            version: Some(FORMAT_VERSION),
            max_nodes: Some(self.machine),
            ..SwfHeader::default()
        };
        SwfLog {
            header,
            jobs: self.records.clone(),
        }
    }

    /// Canonical SWF text of [`Shard::log`].
    pub fn trace_text(&self) -> String {
        write_string(&self.log())
    }

    /// Number of records submitted so far.
    pub fn record_count(&self) -> usize {
        self.records.len()
    }

    /// Run the engine to completion and return the result. When a store was
    /// configured, the session trace is ingested and the result published
    /// under the same cell key the offline memoized path uses, so a later
    /// `psbench simulate --store` of the exported trace is a cache hit.
    ///
    /// If publication fails the finished result is retained and the next
    /// `drain` retries the publish with the identical result — a flaky disk
    /// can delay the reply but never lose or change the run.
    pub fn drain(&mut self) -> Result<Drained, String> {
        let result = match (self.engine.take(), self.pending_drain.take()) {
            (Some(engine), _) => engine.finish(self.policy.as_mut()),
            (None, Some(pending)) => pending,
            (None, None) => return Err("session already drained".into()),
        };
        let stored = match self.publish(&result) {
            Ok(stored) => stored,
            Err(msg) => {
                self.pending_drain = Some(result);
                return Err(msg);
            }
        };
        Ok(Drained { result, stored })
    }

    fn publish(&self, result: &SimulationResult) -> Result<Option<String>, String> {
        let Some(dir) = &self.store_dir else {
            return Ok(None);
        };
        let store = ArtifactStore::open(dir).map_err(|e| format!("store: {e}"))?;
        let outcome = store
            .ingest(self.log().as_source(self.session_name.clone()))
            .map_err(|e| format!("store ingest: {e}"))?;
        let key = trace_cell_key(outcome.key, &self.scheduler_name, self.machine, false);
        store
            .put_result(key, result)
            .map_err(|e| format!("store publish: {e}"))?;
        Ok(Some(key_hex(key)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn afap_shard() -> Shard {
        let config = ShardConfig {
            scheduler: "fcfs".into(),
            machine: 64,
            mode: ClockMode::Afap,
            store_dir: None,
        };
        Shard::new(&config, "test-session".into()).unwrap()
    }

    #[test]
    fn shard_rejects_unknown_scheduler_at_build_time() {
        let config = ShardConfig {
            scheduler: "nope".into(),
            machine: 64,
            mode: ClockMode::Afap,
            store_dir: None,
        };
        let err = match Shard::new(&config, "s".into()) {
            Err(e) => e,
            Ok(_) => panic!("unknown scheduler should be rejected"),
        };
        assert_eq!(err.name, "nope");
    }

    #[test]
    fn submit_clamps_time_monotonically() {
        let mut shard = afap_shard();
        assert_eq!(shard.submit(1, Some(100), 50, 4, None, None).unwrap(), 100);
        // An earlier requested instant is clamped to the session frontier.
        assert_eq!(shard.submit(2, Some(40), 50, 4, None, None).unwrap(), 100);
        // Omitted submit means "now" (the frontier in afap mode).
        assert_eq!(shard.submit(3, None, 50, 4, None, None).unwrap(), 100);
    }

    #[test]
    fn submit_validates_inputs() {
        let mut shard = afap_shard();
        assert!(shard.submit(1, None, -5, 4, None, None).is_err());
        assert!(shard.submit(1, None, 5, 0, None, None).is_err());
        assert!(shard.submit(1, Some(-1), 5, 4, None, None).is_err());
        assert!(shard.submit(1, None, 5, 4, Some(-2), None).is_err());
        shard.submit(1, None, 5, 4, None, None).unwrap();
        let err = shard.submit(1, None, 5, 4, None, None).unwrap_err();
        assert!(err.contains("already submitted"), "{err}");
    }

    #[test]
    fn exact_time_replay_reproduces_the_convenience_path() {
        // Drive one shard through the convenience API and a twin through the
        // resolved-time API with the instants the first one reports — the
        // shape of what journal replay does.
        let mut live = afap_shard();
        let mut replayed = afap_shard();
        let t1 = live.submit(1, Some(0), 100, 64, None, None).unwrap();
        let t2 = live.submit(2, Some(10), 50, 8, Some(80), Some(3)).unwrap();
        live.advance(200).unwrap();
        live.cancel(2).unwrap_err(); // finished by 200: deterministic error
        replayed.submit_at(1, t1, 100, 64, 100, None).unwrap();
        replayed.submit_at(2, t2, 50, 8, 80, Some(3)).unwrap();
        replayed.advance_to(200).unwrap();
        replayed.cancel_at(2, None).unwrap_err();
        let a = live.drain().unwrap().result;
        let b = replayed.drain().unwrap().result;
        assert_eq!(
            psbench_store::encode_result(&a),
            psbench_store::encode_result(&b)
        );
    }

    #[test]
    fn trace_round_trips_through_the_parser() {
        let mut shard = afap_shard();
        shard
            .submit(1, Some(0), 100, 8, Some(120), Some(3))
            .unwrap();
        shard.submit(2, Some(30), 60, 64, None, None).unwrap();
        let text = shard.trace_text();
        let log = psbench_swf::parse_str(&text, &psbench_swf::ParseOptions::default()).unwrap();
        assert_eq!(log.jobs.len(), 2);
        assert_eq!(log.header.max_nodes, Some(64));
        assert_eq!(write_string(&log), text);
    }

    #[test]
    fn drain_is_final() {
        let mut shard = afap_shard();
        shard.submit(1, Some(0), 10, 4, None, None).unwrap();
        let drained = shard.drain().unwrap();
        assert_eq!(drained.result.finished.len(), 1);
        assert!(drained.stored.is_none());
        assert!(shard.drained());
        assert!(shard.drain().is_err());
        assert!(shard.submit(2, None, 5, 1, None, None).is_err());
        // The trace is still readable after draining.
        assert_eq!(shard.record_count(), 1);
    }

    #[test]
    fn drain_retries_after_a_failed_store_publish() {
        let dir =
            std::env::temp_dir().join(format!("psbench-shard-drainretry-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        // A store root that cannot be created: a plain file in the way.
        std::fs::create_dir_all(&dir).unwrap();
        let blocked = dir.join("store");
        std::fs::write(&blocked, b"not a directory").unwrap();
        let config = ShardConfig {
            scheduler: "fcfs".into(),
            machine: 64,
            mode: ClockMode::Afap,
            store_dir: Some(blocked.clone()),
        };
        let mut shard = Shard::new(&config, "retry".into()).unwrap();
        shard.submit(1, Some(0), 10, 4, None, None).unwrap();
        let err = match shard.drain() {
            Err(e) => e,
            Ok(_) => panic!("drain must fail while the store root is blocked"),
        };
        assert!(err.starts_with("store"), "{err}");
        assert!(!shard.drained(), "failed publish must not count as drained");
        // Unblock the store; the retry publishes the identical result.
        std::fs::remove_file(&blocked).unwrap();
        let drained = shard.drain().unwrap();
        assert_eq!(drained.result.finished.len(), 1);
        assert!(drained.stored.is_some());
        assert!(shard.drained());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
