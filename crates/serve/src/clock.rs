//! Session clock modes.
//!
//! A session shard owns a virtual-time engine; the clock mode decides how the
//! engine's released frontier relates to wall-clock time:
//!
//! * **as-fast-as-possible** (`afap`) — no coupling. Time advances only when
//!   the client submits at a later instant or issues `advance`. This is the
//!   mode for scripted replays and the online/offline equivalence check.
//! * **real** — one session second per wall second, anchored at the hello.
//! * **scaled** (`scale:<factor>`) — `factor` session seconds per wall second
//!   (e.g. `scale:60` replays an hour of trace per wall minute).

use std::time::Instant;

/// How a session's virtual time relates to wall-clock time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ClockMode {
    /// Virtual time is driven purely by client commands.
    Afap,
    /// Virtual time tracks wall time 1:1 from the session's start.
    Real,
    /// Virtual time runs at `factor` × wall time.
    Scaled(f64),
}

impl ClockMode {
    /// Parse a mode string: `afap`, `real`, or `scale:<factor>` with a
    /// positive finite factor.
    pub fn parse(s: &str) -> Option<ClockMode> {
        match s {
            "afap" => Some(ClockMode::Afap),
            "real" => Some(ClockMode::Real),
            _ => {
                let factor: f64 = s.strip_prefix("scale:")?.parse().ok()?;
                (factor.is_finite() && factor > 0.0).then_some(ClockMode::Scaled(factor))
            }
        }
    }
}

impl std::fmt::Display for ClockMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClockMode::Afap => write!(f, "afap"),
            ClockMode::Real => write!(f, "real"),
            ClockMode::Scaled(factor) => write!(f, "scale:{factor}"),
        }
    }
}

/// A session's clock: mode plus the wall instant the session started.
#[derive(Debug, Clone)]
pub struct SessionClock {
    mode: ClockMode,
    started: Instant,
}

impl SessionClock {
    /// Start the clock now, in the given mode.
    pub fn new(mode: ClockMode) -> SessionClock {
        SessionClock {
            mode,
            started: Instant::now(),
        }
    }

    /// The mode this clock runs in.
    pub fn mode(&self) -> ClockMode {
        self.mode
    }

    /// Session seconds elapsed according to wall time, or `None` in
    /// as-fast-as-possible mode (where wall time is irrelevant).
    pub fn wall_seconds(&self) -> Option<f64> {
        let elapsed = self.started.elapsed().as_secs_f64();
        match self.mode {
            ClockMode::Afap => None,
            ClockMode::Real => Some(elapsed),
            ClockMode::Scaled(factor) => Some(elapsed * factor),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_all_modes() {
        assert_eq!(ClockMode::parse("afap"), Some(ClockMode::Afap));
        assert_eq!(ClockMode::parse("real"), Some(ClockMode::Real));
        assert_eq!(ClockMode::parse("scale:2.5"), Some(ClockMode::Scaled(2.5)));
        assert_eq!(ClockMode::parse("scale:0"), None);
        assert_eq!(ClockMode::parse("scale:-1"), None);
        assert_eq!(ClockMode::parse("scale:inf"), None);
        assert_eq!(ClockMode::parse("warp"), None);
    }

    #[test]
    fn mode_display_round_trips() {
        for mode in [ClockMode::Afap, ClockMode::Real, ClockMode::Scaled(60.0)] {
            assert_eq!(ClockMode::parse(&mode.to_string()), Some(mode));
        }
    }

    #[test]
    fn afap_clock_reports_no_wall_time() {
        assert_eq!(SessionClock::new(ClockMode::Afap).wall_seconds(), None);
        assert!(SessionClock::new(ClockMode::Real).wall_seconds().unwrap() >= 0.0);
    }
}
