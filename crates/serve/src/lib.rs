//! # psbench-serve — an online scheduling service with live what-if queries
//!
//! The offline pipeline answers "how would policy P have handled trace T?".
//! This crate turns the same engine into a long-running **service**: clients
//! connect over TCP, submit jobs as they materialize, watch the queue evolve,
//! and ask **what-if** questions ("when would job 17 start under EASY instead
//! of conservative?") answered from a cloned engine without perturbing the
//! live session.
//!
//! The server is deliberately boring infrastructure: blocking `std::net`
//! sockets, one thread per connection, and a shared session registry guarded
//! by `parking_lot` mutexes (which do not poison — a panicking connection
//! can never wedge the pool). Each session owns an **engine shard**: an
//! online [`psbench_sim::Simulation`] plus a live policy instance and the
//! canonical SWF record of everything submitted.
//!
//! The cornerstone property is **online/offline equivalence**: drive an
//! as-fast-as-possible session from a script, `drain` it, and the returned
//! `SimulationResult` is bit-for-bit identical to an offline
//! `psbench simulate` of the session's exported `trace` — the service is the
//! simulator, not an approximation of it.
//!
//! ## Protocol reference (version 1)
//!
//! The protocol is newline-framed text over TCP. Every request is one line;
//! every reply is one line starting `ok` or `err`. Request lines longer than
//! [`protocol::MAX_LINE_BYTES`] (64 KiB) close the connection. `trace` and
//! `drain` replies carry `bytes=<n>` and are followed by exactly `n` raw
//! payload bytes.
//!
//! | Request | Reply |
//! |---|---|
//! | `hello psbench-serve/1` | `ok hello proto=1 scheduler=<s> machine=<n> mode=<m>` |
//! | `submit id=<n> runtime=<s> procs=<n> [submit=<s>] [estimate=<s>] [user=<n>]` | `ok submit id=<n> time=<s>` |
//! | `cancel id=<n>` | `ok cancel id=<n>` |
//! | `query queue` | `ok queue now=<t> released=<t> queued=<n> running=<n> finished=<n> used=<n>` |
//! | `query job <id>` | `ok job id=<n> state=<pending\|queued\|running\|finished\|cancelled\|discarded> …` |
//! | `whatif <id> under <scheduler>` | `ok whatif id=<n> scheduler=<s> start=<t> wait=<t> already_started=<bool>` |
//! | `advance to=<s>` | `ok advance now=<t>` |
//! | `trace` | `ok trace bytes=<n> records=<k>` + `n` bytes of canonical SWF text |
//! | `drain` | `ok drain bytes=<n> scheduler=<s> machine=<n> finished=<k> [stored=<hex>]` + `n` bytes of encoded result |
//! | `bye` | `ok bye`, then the server closes the connection |
//!
//! Rules of the road:
//!
//! * The first command must be `hello` with protocol version 1 (`bye` is
//!   also allowed). Anything else is an `err`, and the session stays usable.
//! * Times are integer seconds of session virtual time, so the exported SWF
//!   trace round-trips exactly. A `submit=`/`advance to=` instant earlier
//!   than the session frontier (or, in `real`/`scale:` modes, the wall
//!   clock) is clamped forward; the effective instant is echoed back.
//! * `whatif` answers from a **clone** of the live engine under a fresh
//!   policy built with [`psbench_sched::by_name`]; an unknown policy name
//!   returns an `err` listing every valid scheduler.
//! * `drain` runs the engine to completion and is final: afterwards only
//!   `trace` and `bye` remain meaningful. With a store configured, the
//!   drained trace + result are published under the offline cell key, so
//!   `psbench simulate --store` of the exported trace is a cache hit.
//! * Malformed lines, unknown commands, and invalid arguments get
//!   single-line `err` replies and never tear down other sessions.
//!
//! ## Crate layout
//!
//! * [`protocol`] — command grammar, parsing, reply framing.
//! * [`clock`] — session clock modes (`afap`, `real`, `scale:<f>`).
//! * [`shard`] — the per-session engine wrapper.
//! * [`session`] — the per-connection protocol state machine.
//! * [`server`] — listener, shard pool, connection threads.
//! * [`client`] — a lockstep script driver (used by `psbench client` and CI).

#![warn(missing_docs)]

pub mod client;
pub mod clock;
pub mod protocol;
pub mod server;
pub mod session;
pub mod shard;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use crate::client::{run_pipelined, run_script, CapturedPayload, Transcript};
    pub use crate::clock::{ClockMode, SessionClock};
    pub use crate::protocol::{
        parse_command, payload_len, Command, Reply, MAX_LINE_BYTES, PROTOCOL_VERSION,
    };
    pub use crate::server::{read_reply, serve, ServeConfig, ServerHandle};
    pub use crate::session::Session;
    pub use crate::shard::{Drained, Shard, ShardConfig};
}

pub use prelude::*;
