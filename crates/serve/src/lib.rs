//! # psbench-serve — an online scheduling service with live what-if queries
//!
//! The offline pipeline answers "how would policy P have handled trace T?".
//! This crate turns the same engine into a long-running **service**: clients
//! connect over TCP, submit jobs as they materialize, watch the queue evolve,
//! and ask **what-if** questions ("when would job 17 start under EASY instead
//! of conservative?") answered from a cloned engine without perturbing the
//! live session.
//!
//! The server is deliberately boring infrastructure: blocking `std::net`
//! sockets, one thread per connection, and a shared session registry guarded
//! by `parking_lot` mutexes (which do not poison — a panicking connection
//! can never wedge the pool). Each session owns an **engine shard**: an
//! online [`psbench_sim::Simulation`] plus a live policy instance and the
//! canonical SWF record of everything submitted.
//!
//! The cornerstone property is **online/offline equivalence**: drive an
//! as-fast-as-possible session from a script, `drain` it, and the returned
//! `SimulationResult` is bit-for-bit identical to an offline
//! `psbench simulate` of the session's exported `trace` — the service is the
//! simulator, not an approximation of it.
//!
//! ## Crash safety
//!
//! With a `state_dir` configured, every session is **write-ahead journaled**:
//! each mutating command is resolved to exact instants, appended to
//! `<state_dir>/sessions/<name>.journal` (checksummed, fsynced by policy),
//! and only then applied. Kill the server at any byte; on restart each
//! journal is validated (a torn tail is truncated, mid-file corruption is
//! refused) and the session rebuilt by deterministic replay — the recovered
//! session drains to a byte-identical result. Mutating commands may carry
//! `seq=<n>` for idempotent resubmission after a lost reply; the hello reply
//! echoes the session's `seq=` high-water mark so clients know where they
//! stand. See the [`session`] module docs for the journal format.
//!
//! ## Protocol reference (version 1)
//!
//! The protocol is newline-framed text over TCP. Every request is one line;
//! every reply is one line starting `ok` or `err`. Request lines longer than
//! [`protocol::MAX_LINE_BYTES`] (64 KiB) close the connection. `trace` and
//! `drain` replies carry `bytes=<n>` and are followed by exactly `n` raw
//! payload bytes.
//!
//! | Request | Reply |
//! |---|---|
//! | `hello psbench-serve/1 [session=<name>]` | `ok hello proto=1 scheduler=<s> machine=<n> mode=<m> session=<name> seq=<k> resumed=<bool> [drained]` |
//! | `submit id=<n> runtime=<s> procs=<n> [submit=<s>] [estimate=<s>] [user=<n>] [seq=<n>]` | `ok submit id=<n> time=<s>` |
//! | `cancel id=<n> [seq=<n>]` | `ok cancel id=<n>` |
//! | `query queue` | `ok queue now=<t> released=<t> queued=<n> running=<n> finished=<n> used=<n>` |
//! | `query job <id>` | `ok job id=<n> state=<pending\|queued\|running\|finished\|cancelled\|discarded> …` |
//! | `whatif <id> under <scheduler>` | `ok whatif id=<n> scheduler=<s> start=<t> wait=<t> already_started=<bool>` |
//! | `advance to=<s> [seq=<n>]` | `ok advance now=<t>` |
//! | `trace` | `ok trace bytes=<n> records=<k>` + `n` bytes of canonical SWF text |
//! | `drain [seq=<n>]` | `ok drain bytes=<n> scheduler=<s> machine=<n> finished=<k> [stored=<hex>]` + `n` bytes of encoded result |
//! | `bye` | `ok bye`, then the server closes the connection |
//!
//! Rules of the road:
//!
//! * The first command must be `hello` with protocol version 1 (`bye` is
//!   also allowed). Anything else is an `err`, and the connection stays
//!   usable. A server at capacity replies `err busy retry-after=<secs> …`;
//!   the bundled client backs off and retries ([`client::RetryPolicy`]).
//! * `hello session=<name>` attaches to (or creates) a **named session**.
//!   Disconnecting without `drain` detaches it: reconnect with the same name
//!   to resume — across a server crash, when journaling is on. A connection
//!   idle past the server's timeout is closed with `err idle timeout` (the
//!   session detaches and stays resumable).
//! * Times are integer seconds of session virtual time, so the exported SWF
//!   trace round-trips exactly. A `submit=`/`advance to=` instant earlier
//!   than the session frontier (or, in `real`/`scale:` modes, the wall
//!   clock) is clamped forward; the effective instant is echoed back.
//! * `whatif` answers from a **clone** of the live engine under a fresh
//!   policy built with [`psbench_sched::by_name`]; an unknown policy name
//!   returns an `err` listing every valid scheduler.
//! * `drain` runs the engine to completion and is final: afterwards only
//!   `trace` and `bye` remain meaningful. With a store configured, the
//!   drained trace + result are published under the offline cell key, so
//!   `psbench simulate --store` of the exported trace is a cache hit. If
//!   publishing fails, `drain` replies `err` and may be retried — the
//!   finished result is retained, never recomputed or lost.
//! * Malformed lines, unknown commands, and invalid arguments get
//!   single-line `err` replies and never tear down other sessions.
//!
//! ## Crate layout
//!
//! * [`protocol`] — command grammar, parsing, reply framing.
//! * [`clock`] — session clock modes (`afap`, `real`, `scale:<f>`).
//! * [`shard`] — the per-session engine wrapper (resolve/apply split).
//! * [`session`] — sessions: write-ahead journaling, seq idempotency,
//!   deterministic recovery.
//! * [`server`] — listener, named session pool, connection threads.
//! * [`client`] — a lockstep script driver with retry/backoff (used by
//!   `psbench client` and CI).

#![warn(missing_docs)]

pub mod client;
pub mod clock;
pub mod protocol;
pub mod server;
pub mod session;
pub mod shard;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use crate::client::{
        run_pipelined, run_script, run_script_with, CapturedPayload, RetryPolicy, Transcript,
    };
    pub use crate::clock::{ClockMode, SessionClock};
    pub use crate::protocol::{
        parse_command, payload_len, valid_session_name, Command, Reply, MAX_LINE_BYTES,
        MAX_SESSION_NAME, PROTOCOL_VERSION,
    };
    pub use crate::server::{read_reply, serve, ServeConfig, ServerHandle};
    pub use crate::session::{LoggedCommand, Session};
    pub use crate::shard::{Drained, Shard, ShardConfig};
    pub use psbench_store::FsyncPolicy;
}

pub use prelude::*;
