//! The cornerstone invariant: an as-fast-as-possible scripted session,
//! drained, is **bit-for-bit identical** to an offline run of the trace the
//! session exported — across the scheduler zoo, with what-if probes and
//! queries interleaved throughout to prove they have no side effects.

use psbench_serve::{run_script, serve, ClockMode, ServeConfig};
use psbench_sim::{SimConfig, SimJob, Simulation};
use psbench_swf::{parse_str, ParseOptions};

/// Deterministic job stream: (id, submit, runtime, procs, estimate, user).
fn job_stream(n: u64) -> Vec<(u64, i64, i64, u32, i64, u32)> {
    let mut state: u64 = 0x9e37_79b9_7f4a_7c15;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut t: i64 = 0;
    (1..=n)
        .map(|id| {
            t += (next() % 90) as i64;
            let runtime = 1 + (next() % 2000) as i64;
            let procs = 1 + (next() % 64) as u32;
            let estimate = runtime + (next() % 500) as i64;
            let user = (next() % 7) as u32;
            (id, t, runtime, procs, estimate, user)
        })
        .collect()
}

/// Build the session script: submits interleaved with whatifs and queries,
/// closing with trace + drain.
fn session_script(jobs: &[(u64, i64, i64, u32, i64, u32)]) -> Vec<String> {
    let mut script = vec!["hello psbench-serve/1".to_string()];
    for (i, (id, submit, runtime, procs, estimate, user)) in jobs.iter().enumerate() {
        script.push(format!(
            "submit id={id} submit={submit} runtime={runtime} procs={procs} \
             estimate={estimate} user={user}"
        ));
        // Sprinkle read-only traffic through the whole session: none of it
        // may perturb the engine.
        if i % 41 == 3 {
            script.push(format!("whatif {id} under easy"));
            script.push(format!("whatif {id} under conservative"));
        }
        if i % 23 == 7 {
            script.push("query queue".to_string());
            script.push(format!("query job {id}"));
        }
    }
    script.push("trace".to_string());
    script.push("drain".to_string());
    script.push("bye".to_string());
    script
}

fn assert_online_matches_offline(scheduler: &str) {
    let server = serve(
        "127.0.0.1:0",
        ServeConfig {
            scheduler: scheduler.into(),
            machine: 64,
            mode: ClockMode::Afap,
            max_sessions: 4,
            ..ServeConfig::default()
        },
    )
    .expect("bind server");

    let jobs = job_stream(180);
    let transcript = run_script(server.addr(), &session_script(&jobs)).expect("run script");
    assert!(
        !transcript.has_errors(),
        "unexpected err reply under {scheduler}: {:?}",
        transcript.replies.iter().find(|r| r.starts_with("err"))
    );
    let whatifs = transcript
        .replies
        .iter()
        .filter(|r| r.starts_with("ok whatif"))
        .count();
    assert!(whatifs >= 8, "expected interleaved whatif replies");

    let trace = transcript.payload("trace").expect("trace payload");
    let drain = transcript.payload("drain").expect("drain payload");
    server.stop();

    // Offline leg: parse the exported trace and run the stock offline
    // pipeline on it — same machine, same policy, fresh engine.
    let text = String::from_utf8(trace.body.clone()).expect("trace is utf8");
    let log = parse_str(&text, &ParseOptions::default()).expect("trace parses");
    assert_eq!(log.jobs.len(), jobs.len());
    let machine = log.machine_size();
    assert_eq!(machine, 64, "MaxNodes header must pin the serve machine");
    let offline_jobs = SimJob::from_log(&log);
    let mut policy = psbench_sched::by_name(scheduler, machine).expect("policy");
    let offline = Simulation::new(SimConfig::new(machine), offline_jobs).run(policy.as_mut());

    // Bit-for-bit: the drained payload must equal the canonical encoding of
    // the offline result, byte by byte.
    let online_encoded = String::from_utf8(drain.body.clone()).expect("result is utf8");
    let offline_encoded = psbench_store::encode_result(&offline);
    assert_eq!(
        online_encoded, offline_encoded,
        "online/offline drift under {scheduler}"
    );
    // And the decoded result round-trips to full structural equality.
    let online = psbench_store::decode_result(&online_encoded).expect("decode");
    assert_eq!(online, offline, "decoded drift under {scheduler}");
    assert_eq!(online.finished.len(), jobs.len());
}

#[test]
fn online_matches_offline_fcfs() {
    assert_online_matches_offline("fcfs");
}

#[test]
fn online_matches_offline_sjf() {
    assert_online_matches_offline("sjf");
}

#[test]
fn online_matches_offline_easy() {
    assert_online_matches_offline("easy");
}

#[test]
fn online_matches_offline_conservative() {
    assert_online_matches_offline("conservative");
}

#[test]
fn online_matches_offline_gang() {
    assert_online_matches_offline("gang");
}
