//! Scale: 64 concurrent as-fast-as-possible sessions pushing >100k total
//! submissions through one server, with what-if queries answered throughout.

use std::io::BufReader;
use std::net::TcpStream;

use psbench_serve::{run_pipelined, serve, ClockMode, ServeConfig};

const SESSIONS: usize = 64;
const JOBS_PER_SESSION: usize = 1600; // 64 * 1600 = 102_400 total
const CHUNK: usize = 256;

#[test]
fn sixty_four_sessions_sustain_100k_submissions_with_whatifs() {
    let server = serve(
        "127.0.0.1:0",
        ServeConfig {
            scheduler: "fcfs".into(),
            machine: 256,
            mode: ClockMode::Afap,
            max_sessions: SESSIONS,
            ..ServeConfig::default()
        },
    )
    .expect("bind server");
    let addr = server.addr();

    let workers: Vec<_> = (0..SESSIONS)
        .map(|w| {
            std::thread::spawn(move || -> (usize, usize) {
                let stream = TcpStream::connect(addr).expect("connect");
                stream.set_nodelay(true).ok();
                let mut writer = stream.try_clone().expect("clone");
                let mut reader = BufReader::new(stream);

                let hello = run_pipelined(
                    &mut writer,
                    &mut reader,
                    &["hello psbench-serve/1".to_string()],
                )
                .expect("hello");
                assert!(hello[0].starts_with("ok hello"), "{}", hello[0]);

                let mut submitted = 0usize;
                let mut whatifs_ok = 0usize;
                let mut id = 0u64;
                let mut t: i64 = 0;
                while submitted < JOBS_PER_SESSION {
                    let batch = CHUNK.min(JOBS_PER_SESSION - submitted);
                    let mut lines = Vec::with_capacity(batch + 2);
                    for _ in 0..batch {
                        id += 1;
                        t += ((id * 31 + w as u64 * 7) % 11) as i64;
                        let runtime = 1 + ((id * 13) % 900) as i64;
                        let procs = 1 + ((id * 17 + w as u64) % 64) as u32;
                        lines.push(format!(
                            "submit id={id} submit={t} runtime={runtime} procs={procs}"
                        ));
                    }
                    // Every chunk also asks a what-if and a queue query, so
                    // predictions are being served while the firehose runs.
                    // Probe a job ~25% into the backlog: deep enough to be a
                    // real prediction, shallow enough that the probe clone
                    // does not have to drain the whole firehose every chunk.
                    lines.push(format!("whatif {} under easy", 1 + id / 4));
                    lines.push("query queue".to_string());
                    let replies =
                        run_pipelined(&mut writer, &mut reader, &lines).expect("batch replies");
                    assert_eq!(replies.len(), lines.len(), "worker {w} lost replies");
                    for reply in &replies[..batch] {
                        assert!(reply.starts_with("ok submit"), "worker {w}: {reply}");
                    }
                    assert!(
                        replies[batch].starts_with("ok whatif"),
                        "worker {w}: {}",
                        replies[batch]
                    );
                    assert!(
                        replies[batch + 1].starts_with("ok queue"),
                        "worker {w}: {}",
                        replies[batch + 1]
                    );
                    whatifs_ok += 1;
                    submitted += batch;
                }

                // Drain in lockstep (the reply carries a payload).
                use std::io::Write;
                writeln!(writer, "drain").expect("send drain");
                writer.flush().expect("flush drain");
                let (head, body) = psbench_serve::read_reply(&mut reader)
                    .expect("read drain reply")
                    .expect("drain reply present");
                assert!(head.starts_with("ok drain"), "worker {w}: {head}");
                assert!(
                    head.contains(&format!("finished={submitted}")),
                    "worker {w}: {head}"
                );
                assert!(body.is_some(), "drain payload missing");
                (submitted, whatifs_ok)
            })
        })
        .collect();

    let mut total = 0usize;
    for worker in workers {
        let (submitted, whatifs) = worker.join().expect("worker thread");
        assert!(whatifs > 0);
        total += submitted;
    }
    assert!(total >= 100_000, "only {total} submissions");
    server.stop();
}
