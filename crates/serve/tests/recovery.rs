//! Crash-safety oracle: a journaled session that dies mid-stream and is
//! rebuilt by deterministic replay must be indistinguishable — byte for byte
//! in its drained result — from a twin that never crashed, across the
//! scheduler zoo, at every possible crash point in the journal (including
//! mid-record), and for randomly generated command streams.

use std::path::{Path, PathBuf};

use proptest::prelude::*;
use psbench_serve::{
    serve, ClockMode, FsyncPolicy, Reply, ServeConfig, Session, Shard, ShardConfig,
};
use psbench_sim::{SimConfig, SimJob, Simulation};
use psbench_swf::{parse_str, ParseOptions};

fn afap_config(scheduler: &str) -> ShardConfig {
    ShardConfig {
        scheduler: scheduler.into(),
        machine: 64,
        mode: ClockMode::Afap,
        store_dir: None,
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("psbench-recovery-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Apply one protocol line, insisting on an `ok`/`err` line reply.
fn line(session: &mut Session, cmd: &str) -> String {
    match session.handle_line(cmd) {
        Reply::Line(l) => l,
        other => panic!("expected line reply for {cmd:?}, got {other:?}"),
    }
}

/// Apply one payload-carrying command (`trace` / `drain`) and return its body.
fn payload(session: &mut Session, cmd: &str) -> Vec<u8> {
    match session.handle_line(cmd) {
        Reply::Payload { body, .. } => body,
        other => panic!("expected payload reply for {cmd:?}, got {other:?}"),
    }
}

/// The deterministic zoo script: submits with varied shapes, interleaved
/// advances, and a cancel of an unknown job (journaled, fails identically on
/// replay). No successful cancels — those would drop jobs from the engine
/// but not from the exported trace, which the offline leg below replays.
fn zoo_script() -> Vec<String> {
    let mut script = Vec::new();
    let mut t: i64 = 0;
    for id in 1..=40u64 {
        t += (id * 37) as i64 % 61;
        let runtime = 30 + ((id * 13) % 900) as i64;
        let procs = 1 + ((id * 17) % 64) as u32;
        let estimate = runtime + ((id * 7) % 200) as i64;
        script.push(format!(
            "submit id={id} submit={t} runtime={runtime} procs={procs} \
             estimate={estimate} user={}",
            id % 5
        ));
        if id % 9 == 4 {
            script.push(format!("advance to={}", t + 50));
        }
        if id % 13 == 6 {
            script.push("cancel id=999".to_string()); // unknown: deterministic err
        }
    }
    script
}

/// Crash a journaled session mid-script, recover it from the journal, finish
/// the script, and demand the drained result is byte-identical to (a) an
/// uninterrupted unjournaled twin and (b) an offline simulation of the
/// exported trace.
fn assert_crash_recover_matches(scheduler: &str) {
    let dir = temp_dir(&format!("zoo-{scheduler}"));
    let journal = dir.join("s.journal");
    let config = afap_config(scheduler);
    let script = zoo_script();
    let split = script.len() / 2;

    // Live leg, first half — then the process "dies" (session dropped without
    // drain or sync beyond the per-command flush).
    let mut live = Session::create(&config, "s".into(), Some((&journal, FsyncPolicy::Always)))
        .expect("create journaled session");
    for cmd in &script[..split] {
        line(&mut live, cmd);
    }
    drop(live);

    // Recover by replay, finish the script, export and drain.
    let mut recovered =
        Session::recover(&journal, FsyncPolicy::Always, None).expect("recover session");
    assert_eq!(
        recovered.last_seq() as usize,
        split,
        "every command replayed"
    );
    for cmd in &script[split..] {
        line(&mut recovered, cmd);
    }
    let trace = payload(&mut recovered, "trace");
    let drain = payload(&mut recovered, "drain");

    // Twin leg: the same script, uninterrupted, no journal.
    let mut twin = Session::new(Shard::new(&config, "s".into()).unwrap(), "s".into());
    for cmd in &script {
        line(&mut twin, cmd);
    }
    assert_eq!(
        trace,
        payload(&mut twin, "trace"),
        "trace drift after recovery under {scheduler}"
    );
    assert_eq!(
        drain,
        payload(&mut twin, "drain"),
        "drain drift after recovery under {scheduler}"
    );

    // Offline leg: the exported trace through the stock offline pipeline.
    let text = String::from_utf8(trace).expect("trace is utf8");
    let log = parse_str(&text, &ParseOptions::default()).expect("trace parses");
    let machine = log.machine_size();
    assert_eq!(machine, 64);
    let jobs = SimJob::from_log(&log);
    let mut policy = psbench_sched::by_name(scheduler, machine).expect("policy");
    let offline = Simulation::new(SimConfig::new(machine), jobs).run(policy.as_mut());
    assert_eq!(
        String::from_utf8(drain).expect("result is utf8"),
        psbench_store::encode_result(&offline),
        "recovered drain does not match offline replay under {scheduler}"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn crash_recover_drain_matches_twin_fcfs() {
    assert_crash_recover_matches("fcfs");
}

#[test]
fn crash_recover_drain_matches_twin_sjf() {
    assert_crash_recover_matches("sjf");
}

#[test]
fn crash_recover_drain_matches_twin_easy() {
    assert_crash_recover_matches("easy");
}

#[test]
fn crash_recover_drain_matches_twin_conservative() {
    assert_crash_recover_matches("conservative");
}

#[test]
fn crash_recover_drain_matches_twin_gang() {
    assert_crash_recover_matches("gang");
}

/// A small command stream in which every line is statically valid (so each
/// line consumes exactly one seq and lands in the journal 1:1 — applies may
/// still fail, deterministically, which replay must reproduce).
fn small_script() -> Vec<String> {
    vec![
        "submit id=1 submit=0 runtime=300 procs=64".into(),
        "submit id=2 submit=40 runtime=120 procs=16 estimate=200".into(),
        "cancel id=2".into(),
        "submit id=3 submit=80 runtime=60 procs=8 user=2".into(),
        "advance to=150".into(),
        "cancel id=7".into(), // unknown job: journaled, errs on replay too
        "submit id=4 submit=200 runtime=90 procs=32 estimate=100".into(),
        "advance to=400".into(),
    ]
}

/// Drain bytes of a fresh unjournaled session that applied the first `k`
/// lines of `script` — the reference a crash-recovered session must match.
fn reference_drain(config: &ShardConfig, script: &[String], k: usize) -> Vec<u8> {
    let mut session = Session::new(Shard::new(config, "s".into()).unwrap(), "s".into());
    for cmd in &script[..k] {
        line(&mut session, cmd);
    }
    payload(&mut session, "drain")
}

/// Crash the journal at EVERY byte prefix — including mid-record and inside
/// the open line — and demand recovery either succeeds with some replayed
/// prefix of the command stream (drain bytes equal to the reference for that
/// prefix) or fails cleanly. Never a panic, never a half-applied command.
#[test]
fn recovery_is_exact_at_every_journal_byte_prefix() {
    let dir = temp_dir("prefix");
    let config = afap_config("easy");
    let script = small_script();

    let journal = dir.join("full.journal");
    let mut session = Session::create(&config, "full".into(), Some((&journal, FsyncPolicy::Never)))
        .expect("create");
    for cmd in &script {
        line(&mut session, cmd);
    }
    session.sync_journal().unwrap();
    drop(session);
    let bytes = std::fs::read(&journal).unwrap();

    // References keyed by recovered last_seq (computed once per k, not per
    // byte — recovery at many different prefixes lands on the same k).
    let references: Vec<Vec<u8>> = (0..=script.len())
        .map(|k| reference_drain(&config, &script, k))
        .collect();

    let torn = dir.join("torn.journal");
    let mut recovered_at = vec![0usize; script.len() + 1];
    for cut in 0..=bytes.len() {
        std::fs::write(&torn, &bytes[..cut]).unwrap();
        match Session::recover(&torn, FsyncPolicy::Never, None) {
            Ok(mut recovered) => {
                let k = recovered.last_seq() as usize;
                assert!(k <= script.len(), "cut {cut}: impossible seq {k}");
                recovered_at[k] += 1;
                assert_eq!(
                    payload(&mut recovered, "drain"),
                    references[k],
                    "cut {cut}: recovered seq {k} drifts from its reference"
                );
            }
            Err(e) => {
                // Only prefixes that truncate the open line itself may fail —
                // and they must fail cleanly, as corrupt data.
                assert_eq!(e.kind(), std::io::ErrorKind::InvalidData, "cut {cut}: {e}");
            }
        }
    }
    // Every replay depth was actually reached, torn tails included.
    for (k, hits) in recovered_at.iter().enumerate() {
        assert!(*hits > 0, "no byte prefix recovered to seq {k}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

fn scheduler_zoo() -> &'static [&'static str] {
    &["fcfs", "sjf", "easy", "conservative", "gang"]
}

proptest! {
    /// Random command streams, crashed at a random journal byte, recovered,
    /// finished, drained — bit-equal to the uninterrupted twin, across the
    /// scheduler zoo.
    #[test]
    fn random_streams_survive_random_crash_points(
        spec in (0u64..u64::MAX, prop::collection::vec(0usize..usize::MAX, 1..28))
    ) {
        let (pick, raw) = spec;
        let scheduler = scheduler_zoo()[(pick % scheduler_zoo().len() as u64) as usize];
        let config = afap_config(scheduler);
        let script: Vec<String> = raw
            .iter()
            .enumerate()
            .map(|(i, r)| command_from_draw(i as u64, *r as u64))
            .collect();

        let dir = temp_dir(&format!("prop-{pick}-{}", raw.len()));
        let journal = dir.join("p.journal");
        let mut live =
            Session::create(&config, "p".into(), Some((&journal, FsyncPolicy::Never))).unwrap();
        for cmd in &script {
            line(&mut live, cmd);
        }
        live.sync_journal().unwrap();
        drop(live);

        // Crash at a byte position derived from the same draw stream.
        let bytes = std::fs::read(&journal).unwrap();
        let cut = (pick as usize) % (bytes.len() + 1);
        std::fs::write(&journal, &bytes[..cut]).unwrap();

        match Session::recover(&journal, FsyncPolicy::Never, None) {
            Ok(mut recovered) => {
                let k = recovered.last_seq() as usize;
                prop_assert!(k <= script.len());
                // Finish the script from where the journal survived…
                for cmd in &script[k..] {
                    line(&mut recovered, cmd);
                }
                // …and the drain must match the twin that never crashed.
                let mut twin =
                    Session::new(Shard::new(&config, "p".into()).unwrap(), "p".into());
                for cmd in &script {
                    line(&mut twin, cmd);
                }
                prop_assert_eq!(
                    payload(&mut recovered, "drain"),
                    payload(&mut twin, "drain"),
                    "{} drifted (crash at byte {} of {}, resumed from seq {})",
                    scheduler, cut, bytes.len(), k
                );
            }
            Err(e) => {
                // Only a cut inside the open line may fail, and cleanly so.
                prop_assert_eq!(e.kind(), std::io::ErrorKind::InvalidData, "{}", e);
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Deterministic line builder for the property test: every line is
/// statically valid, so journal records map 1:1 onto script lines.
fn command_from_draw(i: u64, r: u64) -> String {
    let id = 1 + (r / 7) % 24;
    let t = (r / 11) % 2000;
    let runtime = 1 + (r / 13) % 600;
    let procs = 1 + (r / 17) % 64;
    match r % 6 {
        0..=2 => format!(
            "submit id={id} submit={t} runtime={runtime} procs={procs} estimate={} user={}",
            runtime + i % 97,
            id % 4
        ),
        3 => format!("submit id={id} submit={t} runtime={runtime} procs={procs}"),
        4 => format!("cancel id={id}"),
        _ => format!("advance to={t}"),
    }
}

/// Server-level restart: a named, journaled session driven over TCP survives
/// a full server stop/start cycle on the same state dir and resumes with its
/// engine intact; the final drain equals an uninterrupted in-process twin.
#[test]
fn server_restart_resumes_journaled_sessions() {
    let dir = temp_dir("restart");
    let config = ServeConfig {
        scheduler: "conservative".into(),
        machine: 64,
        mode: ClockMode::Afap,
        max_sessions: 4,
        state_dir: Some(dir.clone()),
        ..ServeConfig::default()
    };

    let first_half = [
        "hello psbench-serve/1 session=night",
        "submit id=1 submit=0 runtime=500 procs=64 seq=1",
        "submit id=2 submit=50 runtime=100 procs=16 estimate=150 seq=2",
        "advance to=120 seq=3",
    ];
    let server = serve("127.0.0.1:0", config.clone()).expect("bind first server");
    let transcript =
        psbench_serve::run_script(server.addr(), &first_half).expect("first half runs");
    assert!(!transcript.has_errors(), "{:?}", transcript.replies);
    assert!(
        transcript.replies[0].contains("session=night seq=0 resumed=false"),
        "{}",
        transcript.replies[0]
    );
    server.stop();

    // A new server process (same state dir) recovers the journal on startup.
    let server = serve("127.0.0.1:0", config).expect("bind second server");
    assert_eq!(server.poisoned_sessions(), 0);
    let second_half = [
        "hello psbench-serve/1 session=night",
        "submit id=3 submit=200 runtime=60 procs=8 seq=4",
        "advance to=1000 seq=5",
        "drain seq=6",
        "bye",
    ];
    let transcript =
        psbench_serve::run_script(server.addr(), &second_half).expect("second half runs");
    assert!(!transcript.has_errors(), "{:?}", transcript.replies);
    assert!(
        transcript.replies[0].contains("session=night seq=3 resumed=true"),
        "restart must resume the journaled session: {}",
        transcript.replies[0]
    );
    let drain = transcript.payload("drain").expect("drain payload");
    server.stop();

    // Twin: the same commands against one uninterrupted in-process session.
    let shard_config = afap_config("conservative");
    let mut twin = Session::new(
        Shard::new(&shard_config, "night".into()).unwrap(),
        "night".into(),
    );
    for cmd in first_half[1..].iter().chain(&second_half[1..3]) {
        line(&mut twin, cmd);
    }
    assert_eq!(
        drain.body,
        payload(&mut twin, "drain"),
        "restarted session drifted from the uninterrupted twin"
    );
    // The drained session's journal was cleaned up.
    assert!(
        !journal_file(&dir, "night").exists(),
        "drained session journal should be deleted"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

fn journal_file(state_dir: &Path, name: &str) -> PathBuf {
    state_dir.join("sessions").join(format!("{name}.journal"))
}
