//! Protocol robustness: torn frames, oversized lines, garbage, and dropped
//! connections must produce clean errors (or clean closes) and must never
//! wedge the shared shard pool for other sessions.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

use psbench_serve::{serve, ClockMode, ServeConfig, ServerHandle, MAX_LINE_BYTES};

fn test_server(max_sessions: usize) -> ServerHandle {
    serve(
        "127.0.0.1:0",
        ServeConfig {
            scheduler: "fcfs".into(),
            machine: 64,
            mode: ClockMode::Afap,
            max_sessions,
            ..ServeConfig::default()
        },
    )
    .expect("bind test server")
}

struct Conn {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Conn {
    fn open(server: &ServerHandle) -> Conn {
        let stream = TcpStream::connect(server.addr()).expect("connect");
        let reader = BufReader::new(stream.try_clone().expect("clone stream"));
        Conn {
            writer: stream,
            reader,
        }
    }

    fn send(&mut self, line: &str) {
        writeln!(self.writer, "{line}").expect("write line");
        self.writer.flush().expect("flush");
    }

    /// Read one reply line; None at EOF.
    fn recv(&mut self) -> Option<String> {
        let mut line = String::new();
        match self.reader.read_line(&mut line) {
            Ok(0) => None,
            Ok(_) => Some(line.trim_end().to_string()),
            Err(_) => None,
        }
    }

    fn roundtrip(&mut self, line: &str) -> String {
        self.send(line);
        self.recv().expect("reply")
    }
}

/// A full hello/submit/drain cycle works — used to prove the pool is healthy
/// after each abuse scenario.
fn healthy_session(server: &ServerHandle) {
    let mut conn = Conn::open(server);
    assert!(conn
        .roundtrip("hello psbench-serve/1")
        .starts_with("ok hello"));
    assert!(conn
        .roundtrip("submit id=1 submit=0 runtime=10 procs=4")
        .starts_with("ok submit"));
    assert!(conn.roundtrip("drain").starts_with("ok drain"));
    // Drain carries a payload; draining the socket is unnecessary here — we
    // close it instead, which the server must also tolerate.
}

#[test]
fn garbage_and_unknown_commands_get_err_replies() {
    let server = test_server(16);
    let mut conn = Conn::open(&server);
    // Before hello: anything but hello/bye is refused but not fatal.
    assert!(conn
        .roundtrip("submit id=1 runtime=5 procs=1")
        .starts_with("err "));
    assert!(conn.roundtrip("%%% total garbage %%%").starts_with("err "));
    // Invalid UTF-8 is replied to, not crashed on.
    conn.writer.write_all(b"\xff\xfe garbage\n").unwrap();
    conn.writer.flush().unwrap();
    assert!(conn.recv().expect("reply to bad utf8").starts_with("err "));
    // The session recovers completely.
    assert!(conn
        .roundtrip("hello psbench-serve/1")
        .starts_with("ok hello"));
    assert!(conn
        .roundtrip("no-such-verb")
        .starts_with("err unknown command"));
    assert!(conn
        .roundtrip("submit id=1 submit=0 runtime=5 procs=1")
        .starts_with("ok submit"));
    healthy_session(&server);
    server.stop();
}

#[test]
fn oversized_line_closes_only_the_offending_connection() {
    let server = test_server(16);
    let mut conn = Conn::open(&server);
    assert!(conn
        .roundtrip("hello psbench-serve/1")
        .starts_with("ok hello"));
    let huge = format!(
        "submit id=1 runtime=5 procs=1 {}",
        "x".repeat(MAX_LINE_BYTES)
    );
    conn.send(&huge);
    let reply = conn.recv().expect("oversize error reply");
    assert!(reply.starts_with("err line exceeds"), "{reply}");
    assert_eq!(conn.recv(), None, "connection should be closed");
    // Other sessions are unaffected.
    healthy_session(&server);
    server.stop();
}

#[test]
fn torn_frames_and_dropped_connections_do_not_poison_the_pool() {
    let server = test_server(16);
    // A client that sends a partial line and vanishes.
    {
        let mut conn = Conn::open(&server);
        conn.writer.write_all(b"submit id=1 runt").unwrap();
        conn.writer.flush().unwrap();
        // Dropped here without a newline: the server sees a torn frame.
    }
    // A client that completes the handshake, submits, then vanishes mid-session.
    {
        let mut conn = Conn::open(&server);
        assert!(conn
            .roundtrip("hello psbench-serve/1")
            .starts_with("ok hello"));
        assert!(conn
            .roundtrip("submit id=1 submit=0 runtime=1000 procs=64")
            .starts_with("ok submit"));
    }
    // The pool serves new sessions as if nothing happened.
    healthy_session(&server);
    healthy_session(&server);
    server.stop();
}

#[test]
fn session_capacity_is_enforced_and_slots_are_reclaimed() {
    let server = test_server(2);
    let mut first = Conn::open(&server);
    let mut second = Conn::open(&server);
    assert!(first
        .roundtrip("hello psbench-serve/1")
        .starts_with("ok hello"));
    assert!(second
        .roundtrip("hello psbench-serve/1")
        .starts_with("ok hello"));
    // A third hello is turned away with a retryable busy error; the
    // connection itself stays open so the client can just try again.
    let mut third = Conn::open(&server);
    let reply = third.roundtrip("hello psbench-serve/1");
    assert!(reply.starts_with("err busy retry-after="), "{reply}");
    assert!(reply.contains("session capacity (2)"), "{reply}");
    // Saying goodbye frees a slot (detach races the close, so poll) — and
    // the refused connection is still usable for the retry.
    assert_eq!(first.roundtrip("bye"), "ok bye");
    drop(first);
    let mut admitted = false;
    for _ in 0..50 {
        let reply = third.roundtrip("hello psbench-serve/1");
        if reply.starts_with("ok hello") {
            admitted = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(admitted, "slot should be reclaimed after disconnect");
    server.stop();
}

#[test]
fn idle_connections_are_timed_out_but_stay_resumable() {
    let server = serve(
        "127.0.0.1:0",
        ServeConfig {
            scheduler: "fcfs".into(),
            machine: 64,
            mode: ClockMode::Afap,
            max_sessions: 2,
            idle_timeout: Some(Duration::from_millis(150)),
            ..ServeConfig::default()
        },
    )
    .expect("bind test server");
    let mut conn = Conn::open(&server);
    let hello = conn.roundtrip("hello psbench-serve/1 session=wedged");
    assert!(hello.starts_with("ok hello"), "{hello}");
    assert!(conn
        .roundtrip("submit id=1 submit=0 runtime=10 procs=4")
        .starts_with("ok submit"));
    // Go silent. The server times the read out, closes the connection, and
    // frees the slot — a wedged client cannot hold it forever.
    let reply = conn.recv().expect("timeout notice before close");
    assert_eq!(reply, "err idle timeout");
    assert_eq!(conn.recv(), None, "connection should be closed");
    // The session detached: re-attaching resumes it with its state intact.
    let mut back = Conn::open(&server);
    let hello = back.roundtrip("hello psbench-serve/1 session=wedged");
    assert!(
        hello.contains("session=wedged seq=1 resumed=true"),
        "{hello}"
    );
    let job = back.roundtrip("query job 1");
    assert!(job.starts_with("ok job id=1"), "{job}");
    server.stop();
}

#[test]
fn named_sessions_survive_disconnects_in_memory() {
    let server = test_server(4);
    {
        let mut conn = Conn::open(&server);
        let hello = conn.roundtrip("hello psbench-serve/1 session=night");
        assert!(
            hello.contains("session=night seq=0 resumed=false"),
            "{hello}"
        );
        assert!(conn
            .roundtrip("submit id=1 submit=0 runtime=100 procs=8 seq=1")
            .starts_with("ok submit"));
        assert!(conn
            .roundtrip("advance to=50 seq=2")
            .starts_with("ok advance"));
        // Connection dropped without drain or bye.
    }
    // While detached, a different client cannot steal the name twice…
    let mut a = Conn::open(&server);
    let hello = a.roundtrip("hello psbench-serve/1 session=night");
    assert!(hello.contains("seq=2 resumed=true"), "{hello}");
    let mut b = Conn::open(&server);
    let stolen = b.roundtrip("hello psbench-serve/1 session=night");
    assert!(
        stolen.starts_with("err session night is already attached"),
        "{stolen}"
    );
    // …and the resumed session still has its engine state.
    let q = a.roundtrip("query queue");
    assert!(q.contains("running=1"), "{q}");
    assert!(a.roundtrip("drain").starts_with("ok drain"));
    server.stop();
}

#[test]
fn busy_servers_are_retried_by_the_client() {
    let server = test_server(1);
    // Occupy the only slot, then release it shortly after.
    let mut holder = Conn::open(&server);
    assert!(holder
        .roundtrip("hello psbench-serve/1")
        .starts_with("ok hello"));
    let addr = server.addr();
    let release = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(300));
        assert_eq!(holder.roundtrip("bye"), "ok bye");
        drop(holder);
    });
    // retry-after=1 forces at least one full second of backoff.
    let script = [
        "hello psbench-serve/1",
        "submit id=1 submit=0 runtime=5 procs=1",
        "drain",
        "bye",
    ];
    let transcript =
        psbench_serve::run_script_with(addr, &script, psbench_serve::RetryPolicy::quick(5))
            .expect("script with retries");
    release.join().unwrap();
    assert!(
        transcript.replies[0].starts_with("ok hello"),
        "retries should eventually attach: {:?}",
        transcript.replies
    );
    assert!(!transcript.has_errors(), "{:?}", transcript.replies);
    server.stop();
}

#[test]
fn errors_never_abort_a_scripted_run() {
    let server = test_server(16);
    let script = [
        "hello psbench-serve/1",
        "submit id=1 submit=0 runtime=100 procs=64",
        "submit id=1 submit=5 runtime=10 procs=1", // duplicate id -> err
        "whatif 1 under no-such-policy",           // unknown policy -> err
        "query job 999",                           // unknown job -> err
        "submit id=2 submit=5 runtime=10 procs=1", // still works
        "drain",
        "bye",
    ];
    let transcript = psbench_serve::run_script(server.addr(), &script).expect("script runs");
    assert_eq!(transcript.replies.len(), script.len());
    assert!(transcript.has_errors());
    assert!(transcript.replies[5].starts_with("ok submit id=2"));
    assert!(transcript.replies[6].starts_with("ok drain"));
    assert!(transcript.payload("drain").is_some());
    server.stop();
}
