//! Protocol robustness: torn frames, oversized lines, garbage, and dropped
//! connections must produce clean errors (or clean closes) and must never
//! wedge the shared shard pool for other sessions.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

use psbench_serve::{serve, ClockMode, ServeConfig, ServerHandle, MAX_LINE_BYTES};

fn test_server(max_sessions: usize) -> ServerHandle {
    serve(
        "127.0.0.1:0",
        ServeConfig {
            scheduler: "fcfs".into(),
            machine: 64,
            mode: ClockMode::Afap,
            store_dir: None,
            max_sessions,
        },
    )
    .expect("bind test server")
}

struct Conn {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Conn {
    fn open(server: &ServerHandle) -> Conn {
        let stream = TcpStream::connect(server.addr()).expect("connect");
        let reader = BufReader::new(stream.try_clone().expect("clone stream"));
        Conn {
            writer: stream,
            reader,
        }
    }

    fn send(&mut self, line: &str) {
        writeln!(self.writer, "{line}").expect("write line");
        self.writer.flush().expect("flush");
    }

    /// Read one reply line; None at EOF.
    fn recv(&mut self) -> Option<String> {
        let mut line = String::new();
        match self.reader.read_line(&mut line) {
            Ok(0) => None,
            Ok(_) => Some(line.trim_end().to_string()),
            Err(_) => None,
        }
    }

    fn roundtrip(&mut self, line: &str) -> String {
        self.send(line);
        self.recv().expect("reply")
    }
}

/// A full hello/submit/drain cycle works — used to prove the pool is healthy
/// after each abuse scenario.
fn healthy_session(server: &ServerHandle) {
    let mut conn = Conn::open(server);
    assert!(conn
        .roundtrip("hello psbench-serve/1")
        .starts_with("ok hello"));
    assert!(conn
        .roundtrip("submit id=1 submit=0 runtime=10 procs=4")
        .starts_with("ok submit"));
    assert!(conn.roundtrip("drain").starts_with("ok drain"));
    // Drain carries a payload; draining the socket is unnecessary here — we
    // close it instead, which the server must also tolerate.
}

#[test]
fn garbage_and_unknown_commands_get_err_replies() {
    let server = test_server(16);
    let mut conn = Conn::open(&server);
    // Before hello: anything but hello/bye is refused but not fatal.
    assert!(conn
        .roundtrip("submit id=1 runtime=5 procs=1")
        .starts_with("err "));
    assert!(conn.roundtrip("%%% total garbage %%%").starts_with("err "));
    // Invalid UTF-8 is replied to, not crashed on.
    conn.writer.write_all(b"\xff\xfe garbage\n").unwrap();
    conn.writer.flush().unwrap();
    assert!(conn.recv().expect("reply to bad utf8").starts_with("err "));
    // The session recovers completely.
    assert!(conn
        .roundtrip("hello psbench-serve/1")
        .starts_with("ok hello"));
    assert!(conn
        .roundtrip("no-such-verb")
        .starts_with("err unknown command"));
    assert!(conn
        .roundtrip("submit id=1 submit=0 runtime=5 procs=1")
        .starts_with("ok submit"));
    healthy_session(&server);
    server.stop();
}

#[test]
fn oversized_line_closes_only_the_offending_connection() {
    let server = test_server(16);
    let mut conn = Conn::open(&server);
    assert!(conn
        .roundtrip("hello psbench-serve/1")
        .starts_with("ok hello"));
    let huge = format!(
        "submit id=1 runtime=5 procs=1 {}",
        "x".repeat(MAX_LINE_BYTES)
    );
    conn.send(&huge);
    let reply = conn.recv().expect("oversize error reply");
    assert!(reply.starts_with("err line exceeds"), "{reply}");
    assert_eq!(conn.recv(), None, "connection should be closed");
    // Other sessions are unaffected.
    healthy_session(&server);
    server.stop();
}

#[test]
fn torn_frames_and_dropped_connections_do_not_poison_the_pool() {
    let server = test_server(16);
    // A client that sends a partial line and vanishes.
    {
        let mut conn = Conn::open(&server);
        conn.writer.write_all(b"submit id=1 runt").unwrap();
        conn.writer.flush().unwrap();
        // Dropped here without a newline: the server sees a torn frame.
    }
    // A client that completes the handshake, submits, then vanishes mid-session.
    {
        let mut conn = Conn::open(&server);
        assert!(conn
            .roundtrip("hello psbench-serve/1")
            .starts_with("ok hello"));
        assert!(conn
            .roundtrip("submit id=1 submit=0 runtime=1000 procs=64")
            .starts_with("ok submit"));
    }
    // The pool serves new sessions as if nothing happened.
    healthy_session(&server);
    healthy_session(&server);
    server.stop();
}

#[test]
fn session_capacity_is_enforced_and_slots_are_reclaimed() {
    let server = test_server(2);
    let mut first = Conn::open(&server);
    let mut second = Conn::open(&server);
    assert!(first
        .roundtrip("hello psbench-serve/1")
        .starts_with("ok hello"));
    assert!(second
        .roundtrip("hello psbench-serve/1")
        .starts_with("ok hello"));
    // Third connection is turned away with a clean error.
    let mut third = Conn::open(&server);
    let reply = third.recv().expect("capacity error");
    assert!(
        reply.starts_with("err server at session capacity"),
        "{reply}"
    );
    // Saying goodbye frees a slot (deregistration races the close, so poll).
    assert_eq!(first.roundtrip("bye"), "ok bye");
    drop(first);
    let mut admitted = false;
    for _ in 0..50 {
        let mut retry = Conn::open(&server);
        retry.send("hello psbench-serve/1");
        match retry.recv() {
            Some(reply) if reply.starts_with("ok hello") => {
                admitted = true;
                break;
            }
            _ => std::thread::sleep(Duration::from_millis(20)),
        }
    }
    assert!(admitted, "slot should be reclaimed after disconnect");
    server.stop();
}

#[test]
fn errors_never_abort_a_scripted_run() {
    let server = test_server(16);
    let script = [
        "hello psbench-serve/1",
        "submit id=1 submit=0 runtime=100 procs=64",
        "submit id=1 submit=5 runtime=10 procs=1", // duplicate id -> err
        "whatif 1 under no-such-policy",           // unknown policy -> err
        "query job 999",                           // unknown job -> err
        "submit id=2 submit=5 runtime=10 procs=1", // still works
        "drain",
        "bye",
    ];
    let transcript = psbench_serve::run_script(server.addr(), &script).expect("script runs");
    assert_eq!(transcript.replies.len(), script.len());
    assert!(transcript.has_errors());
    assert!(transcript.replies[5].starts_with("ok submit id=2"));
    assert!(transcript.replies[6].starts_with("ok drain"));
    assert!(transcript.payload("drain").is_some());
    server.stop();
}
