//! Criterion benches that regenerate every experiment of EXPERIMENTS.md.
//!
//! Each benchmark group runs one experiment (E1..E10) at the quick scale and prints
//! its table once, so `cargo bench` both measures the harness and reproduces the
//! rows recorded in EXPERIMENTS.md. Component micro-benchmarks (SWF parsing,
//! workload generation, the simulation engine, backfilling cost) follow.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use psbench_core::{run_experiment, Scale};
use psbench_sched::by_name;
use psbench_sim::{SimConfig, SimJob, Simulation};
use psbench_swf::{parse, write_string};
use psbench_workload::{Lublin99, WorkloadModel};
use std::hint::black_box;
use std::sync::atomic::{AtomicBool, Ordering};

static PRINTED: AtomicBool = AtomicBool::new(false);

fn bench_experiments(c: &mut Criterion) {
    let scale = Scale::quick();
    // Print every experiment table once, so `cargo bench` output contains the rows
    // that EXPERIMENTS.md records.
    if !PRINTED.swap(true, Ordering::SeqCst) {
        for id in psbench_core::experiment_ids() {
            if let Some(table) = run_experiment(id, scale) {
                println!("\n{}", table.to_markdown());
            }
        }
    }
    let mut group = c.benchmark_group("experiments");
    group.sample_size(10);
    for id in ["E1", "E3", "E6", "E7"] {
        group.bench_with_input(BenchmarkId::from_parameter(id), id, |b, id| {
            b.iter(|| black_box(run_experiment(id, scale)));
        });
    }
    group.finish();
}

fn bench_swf_parsing(c: &mut Criterion) {
    let log = Lublin99::default().generate(5_000, 42);
    let text = write_string(&log);
    let mut group = c.benchmark_group("swf");
    group.throughput(criterion::Throughput::Elements(log.len() as u64));
    group.bench_function("parse_5k_jobs", |b| {
        b.iter(|| black_box(parse(&text).unwrap()))
    });
    group.bench_function("write_5k_jobs", |b| {
        b.iter(|| black_box(write_string(&log)))
    });
    group.finish();
}

fn bench_workload_models(c: &mut Criterion) {
    let mut group = c.benchmark_group("workload_models");
    group.sample_size(10);
    for model in psbench_workload::standard_models(128) {
        group.bench_function(model.name(), |b| {
            b.iter(|| black_box(model.generate(2_000, 7)));
        });
    }
    group.finish();
}

fn bench_simulation_engine(c: &mut Criterion) {
    let log = Lublin99::default().generate(2_000, 11);
    let jobs = SimJob::from_log(&log);
    let mut group = c.benchmark_group("simulation");
    group.sample_size(10);
    for sched_name in ["fcfs", "easy", "conservative", "gang"] {
        group.bench_function(sched_name, |b| {
            b.iter(|| {
                let mut sched = by_name(sched_name, 128).unwrap();
                black_box(Simulation::new(SimConfig::new(128), jobs.clone()).run(sched.as_mut()))
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_experiments,
    bench_swf_parsing,
    bench_workload_models,
    bench_simulation_engine
);
criterion_main!(benches);
