//! Benches for the trace-analysis subsystem: SWF parsing throughput and the
//! single-pass characterization of a 100k-job trace, sequential and chunked
//! parallel, the KS/EMD fidelity comparison, and the end-to-end streaming
//! parse+profile pipeline over a 1M-job synthetic log.

use criterion::{criterion_group, criterion_main, Criterion};
use psbench_analyze::{FidelityReport, WorkloadProfile};
use psbench_core::{default_threads, profile_parallel, profile_source_parallel};
use psbench_swf::{parse, write_string, ParseOptions, RecordIter};
use psbench_workload::{Lublin99, WorkloadModel};
use std::hint::black_box;

/// The trace every bench in this file works on: 100k Lublin99 jobs.
const TRACE_JOBS: usize = 100_000;

fn bench_swf_parse_throughput(c: &mut Criterion) {
    let log = Lublin99::default().generate(TRACE_JOBS, 42);
    let text = write_string(&log);
    let mut group = c.benchmark_group("swf_throughput");
    group.sample_size(10);
    group.throughput(criterion::Throughput::Bytes(text.len() as u64));
    group.bench_function("parse_100k_jobs", |b| {
        b.iter(|| black_box(parse(&text).unwrap()))
    });
    group.finish();
}

fn bench_analyze_pass(c: &mut Criterion) {
    let log = Lublin99::default().generate(TRACE_JOBS, 42);
    let mut group = c.benchmark_group("analyze");
    group.sample_size(10);
    group.throughput(criterion::Throughput::Elements(log.len() as u64));
    group.bench_function("profile_100k_sequential", |b| {
        b.iter(|| black_box(WorkloadProfile::of_log("bench", &log)))
    });
    group.bench_function("profile_100k_parallel", |b| {
        b.iter(|| black_box(profile_parallel("bench", &log, default_threads())))
    });
    let reference = WorkloadProfile::of_log("ref", &log);
    let candidate = WorkloadProfile::of_log("cand", &Lublin99::default().generate(TRACE_JOBS, 43));
    group.bench_function("fidelity_compare", |b| {
        b.iter(|| black_box(FidelityReport::compare(&reference, &candidate)))
    });
    group.finish();
}

/// The streaming acceptance scenario at benchmark scale: incrementally parse
/// and profile a 1M-job SWF text through the `JobSource` pipeline, in
/// O(block) record memory, and compare against the materialize-then-profile
/// baseline that holds the whole record vector.
fn bench_streaming_pipeline(c: &mut Criterion) {
    const STREAM_JOBS: usize = 1_000_000;
    let text = write_string(&Lublin99::default().generate(STREAM_JOBS, 42));
    let mut group = c.benchmark_group("streaming");
    group.sample_size(10);
    group.throughput(criterion::Throughput::Elements(STREAM_JOBS as u64));
    group.bench_function("stream_parse_profile_1m", |b| {
        b.iter(|| {
            let source =
                RecordIter::new(text.as_bytes(), ParseOptions::default()).with_name("bench");
            black_box(profile_source_parallel(source, default_threads()).unwrap())
        })
    });
    group.bench_function("materialize_parse_profile_1m", |b| {
        b.iter(|| {
            let log = parse(&text).unwrap();
            black_box(profile_parallel("bench", &log, default_threads()))
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_swf_parse_throughput,
    bench_analyze_pass,
    bench_streaming_pipeline
);
criterion_main!(benches);
