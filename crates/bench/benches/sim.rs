//! Benches for the discrete-event simulation engine: the completion-calendar
//! hot path across schedulers, workload scales (10k / 100k / 1M Lublin99 jobs),
//! loop modes, and outage handling — plus head-to-head runs against the
//! seed-style reference engine (per-event linear rescans) that demonstrate the
//! per-event cost no longer scales with the running-set size.
//!
//! `sim-bench` (the companion binary) runs the quick subset of these scenarios
//! and emits the machine-readable `BENCH_sim.json` snapshot that CI diffs.

use criterion::{criterion_group, criterion_main, Criterion};
use psbench_sched::by_name;
use psbench_sim::{EngineKind, SimConfig, SimJob, Simulation};
use psbench_workload::feedback::{infer_dependencies, InferenceParams};
use psbench_workload::outagegen::OutageGenerator;
use psbench_workload::{Lublin99, WorkloadModel};
use std::hint::black_box;

const MACHINE: u32 = 128;

fn jobs(n: usize, seed: u64) -> Vec<SimJob> {
    SimJob::from_log(&Lublin99::default().generate(n, seed))
}

fn run(kind: EngineKind, config: SimConfig, jobs: Vec<SimJob>, sched: &str) -> u64 {
    let mut scheduler = by_name(sched, MACHINE).expect("scheduler");
    Simulation::with_engine(config, jobs, kind)
        .run(scheduler.as_mut())
        .events_processed
}

/// Schedulers × scale on the calendar engine: the production hot path.
fn bench_engine_scale(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim");
    group.sample_size(10);
    for &n in &[10_000usize, 100_000] {
        let js = jobs(n, 42);
        group.throughput(criterion::Throughput::Elements(n as u64));
        for sched in ["fcfs", "easy", "gang"] {
            group.bench_function(format!("{sched}_{}k_open", n / 1000), |b| {
                b.iter(|| {
                    black_box(run(
                        EngineKind::Calendar,
                        SimConfig::new(MACHINE),
                        js.clone(),
                        sched,
                    ))
                })
            });
        }
    }
    group.finish();
}

/// Closed-loop and outage-driven variants at 100k jobs.
fn bench_engine_modes(c: &mut Criterion) {
    const N: usize = 100_000;
    let mut group = c.benchmark_group("sim_modes");
    group.sample_size(10);
    group.throughput(criterion::Throughput::Elements(N as u64));

    let mut log = Lublin99::default().generate(N, 42);
    let open_jobs = SimJob::from_log(&log);
    infer_dependencies(&mut log, &InferenceParams::default());
    let closed_jobs = SimJob::from_log(&log);
    let horizon = open_jobs.iter().map(|j| j.submit as i64).max().unwrap_or(0) + 86_400;
    let outages = OutageGenerator::for_machine(MACHINE).generate(horizon, 4242);

    group.bench_function("easy_100k_closed", |b| {
        b.iter(|| {
            black_box(run(
                EngineKind::Calendar,
                SimConfig::new(MACHINE).closed_loop(),
                closed_jobs.clone(),
                "easy",
            ))
        })
    });
    group.bench_function("easy_100k_outages", |b| {
        b.iter(|| {
            black_box(run(
                EngineKind::Calendar,
                SimConfig::new(MACHINE).with_outages(outages.clone()),
                open_jobs.clone(),
                "easy",
            ))
        })
    });
    group.finish();
}

/// Calendar vs the seed-style reference engine: the acceptance comparison. The
/// reference does O(running) work per event, so its time grows with machine
/// saturation; the calendar's does not.
fn bench_calendar_vs_reference(c: &mut Criterion) {
    const N: usize = 100_000;
    let js = jobs(N, 42);
    let mut group = c.benchmark_group("sim_engine_comparison");
    group.sample_size(10);
    group.throughput(criterion::Throughput::Elements(N as u64));
    for sched in ["fcfs", "easy"] {
        group.bench_function(format!("calendar_{sched}_100k"), |b| {
            b.iter(|| {
                black_box(run(
                    EngineKind::Calendar,
                    SimConfig::new(MACHINE),
                    js.clone(),
                    sched,
                ))
            })
        });
    }
    let mut small = group;
    small.sample_size(2);
    for sched in ["fcfs", "easy"] {
        small.bench_function(format!("reference_{sched}_100k"), |b| {
            b.iter(|| {
                black_box(run(
                    EngineKind::Reference,
                    SimConfig::new(MACHINE),
                    js.clone(),
                    sched,
                ))
            })
        });
    }
    small.finish();
}

/// Overloaded closed-loop saturation: submit times compressed 8×, so the
/// backlog grows to archive depth and every completion replan runs against a
/// deep queue. This is the backlog-index acceptance scenario — per-replan cost
/// must track the viable candidates, not the backlog.
fn bench_saturation(c: &mut Criterion) {
    const N: usize = 100_000;
    let mut log = Lublin99::default().generate(N, 42);
    for j in &mut log.jobs {
        j.submit_time /= 8;
    }
    infer_dependencies(&mut log, &InferenceParams::default());
    let js = SimJob::from_log(&log);
    let mut group = c.benchmark_group("sim_saturation");
    group.sample_size(10);
    group.throughput(criterion::Throughput::Elements(N as u64));
    // `conservative` is the persistent-calendar backfiller — one durable
    // reservation per queued job. The seed implementation was cubic here;
    // with the lazy-compression calendar it rides the same scenario at the
    // same order of wall time as the cheap policies.
    for sched in ["easy", "gang", "fcfs", "conservative"] {
        group.bench_function(format!("{sched}_100k_saturated_closed"), |b| {
            b.iter(|| {
                black_box(run(
                    EngineKind::Calendar,
                    SimConfig::new(MACHINE).closed_loop(),
                    js.clone(),
                    sched,
                ))
            })
        });
    }
    group.finish();
}

/// The archive-scale end-to-end scenario: a 1M-job month-scale trace through
/// FCFS and EASY on the calendar engine.
fn bench_million_jobs(c: &mut Criterion) {
    const N: usize = 1_000_000;
    let js = jobs(N, 42);
    let mut group = c.benchmark_group("sim_1m");
    group.sample_size(2);
    group.throughput(criterion::Throughput::Elements(N as u64));
    for sched in ["fcfs", "easy"] {
        group.bench_function(format!("{sched}_1m_open"), |b| {
            b.iter(|| {
                black_box(run(
                    EngineKind::Calendar,
                    SimConfig::new(MACHINE),
                    js.clone(),
                    sched,
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_engine_scale,
    bench_engine_modes,
    bench_calendar_vs_reference,
    bench_saturation,
    bench_million_jobs
);
criterion_main!(benches);
