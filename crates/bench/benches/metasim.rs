//! Benches for the sharded metasystem's epoch loop: dispatch-policy cost over
//! a fixed fleet, fleet-size scaling under least-pressure dispatch, and the
//! parallel advance at several thread counts (results are bit-identical for
//! any of them; only wall clock moves).
//!
//! `meta-bench` (the companion binary) runs a quick grid of these cells and
//! emits the machine-readable `BENCH_meta.json` snapshot that CI diffs.

use criterion::{criterion_group, criterion_main, Criterion};
use psbench_metasim::{run_metasystem, standard_shard_fleet, DispatchPolicy, MetaConfig};
use psbench_sim::SimJob;
use psbench_workload::{Lublin99, WorkloadModel};
use std::hint::black_box;

/// The `psbench metasim` stream: Lublin '99 with interarrivals compressed by
/// `1/sites`, renumbered onto unique ids below the migration band.
fn stream(sites: usize, n: usize) -> Vec<SimJob> {
    let mut log = Lublin99::with_machine_size(128).generate(n, 1);
    log.scale_interarrivals(1.0 / sites as f64);
    let mut jobs = SimJob::from_log(&log);
    for (i, job) in jobs.iter_mut().enumerate() {
        job.id = i as u64 + 1;
        job.preceding = None;
        job.think_time = 0.0;
    }
    jobs
}

/// Every dispatch policy over a 16-site fleet at 20k jobs.
fn bench_dispatch_policies(c: &mut Criterion) {
    const SITES: usize = 16;
    const N: usize = 20_000;
    let specs = standard_shard_fleet(SITES, "easy");
    let jobs = stream(SITES, N);
    let mut group = c.benchmark_group("bench_metasim");
    group.sample_size(10);
    group.throughput(criterion::Throughput::Elements(N as u64));
    for &dispatch in DispatchPolicy::all() {
        group.bench_function(format!("dispatch_{}", dispatch.name()), |b| {
            let cfg = MetaConfig::new(dispatch);
            b.iter(|| black_box(run_metasystem(&specs, &jobs, &cfg).unwrap().epochs))
        });
    }
    group.finish();
}

/// Fleet-size scaling and the parallel advance under least-pressure dispatch.
fn bench_fleet_scaling(c: &mut Criterion) {
    const N: usize = 50_000;
    let mut group = c.benchmark_group("bench_metasim_fleet");
    group.sample_size(10);
    group.throughput(criterion::Throughput::Elements(N as u64));
    for &sites in &[16usize, 64, 256] {
        let specs = standard_shard_fleet(sites, "easy");
        let jobs = stream(sites, N);
        group.bench_function(format!("sites_{sites}_serial"), |b| {
            let cfg = MetaConfig::new(DispatchPolicy::LeastPressure);
            b.iter(|| black_box(run_metasystem(&specs, &jobs, &cfg).unwrap().epochs))
        });
    }
    let specs = standard_shard_fleet(256, "easy");
    let jobs = stream(256, N);
    for &threads in &[2usize, 8] {
        group.bench_function(format!("sites_256_threads_{threads}"), |b| {
            let cfg = MetaConfig::new(DispatchPolicy::LeastPressure).with_threads(threads);
            b.iter(|| black_box(run_metasystem(&specs, &jobs, &cfg).unwrap().epochs))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_dispatch_policies, bench_fleet_scaling);
criterion_main!(benches);
