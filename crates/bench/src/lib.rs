//! Criterion benchmark harness crate for psbench (benches live in benches/).
