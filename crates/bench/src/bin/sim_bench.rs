//! `sim-bench` — the simulation-engine benchmark snapshot tool.
//!
//! Runs a fixed, deterministic set of simulation scenarios (schedulers ×
//! workload scales × loop modes × outages, on both the calendar and the
//! reference engine) and emits a machine-readable JSON snapshot with, per
//! scenario, the event count, result fingerprint, wall time and events/sec.
//! The committed `BENCH_sim.json` is such a snapshot; CI regenerates a quick
//! run and diffs it against the baseline:
//!
//! * **result drift** (event count / finished jobs / mean response changed) is
//!   an error — simulation results are machine-independent, so a mismatch means
//!   an engine or scheduler behavior change that must be acknowledged by
//!   regenerating the baseline;
//! * **performance regressions** (> 20% drop in events/sec) produce warnings —
//!   absolute speed varies across machines, so they do not fail the build.
//!
//! ```text
//! sim-bench [--scale quick|full] [--out BENCH_sim.json] [--baseline BENCH_sim.json] [--repeat N]
//! ```

use psbench_analyze::report::{json_escape, json_num};
use psbench_sched::by_name;
use psbench_sim::{EngineKind, SimConfig, SimJob, Simulation};
use psbench_workload::feedback::{infer_dependencies, InferenceParams};
use psbench_workload::outagegen::OutageGenerator;
use psbench_workload::{Lublin99, WorkloadModel};
use std::process::ExitCode;
use std::time::Instant;

const MACHINE: u32 = 128;

struct Scenario {
    name: String,
    scheduler: &'static str,
    engine: EngineKind,
    config: SimConfig,
    jobs: Vec<SimJob>,
}

struct Measurement {
    name: String,
    scheduler: String,
    engine: &'static str,
    jobs: usize,
    events: u64,
    finished: usize,
    mean_response: f64,
    wall_ms: f64,
    events_per_sec: f64,
}

fn lublin_jobs(n: usize, seed: u64) -> Vec<SimJob> {
    SimJob::from_log(&Lublin99::default().generate(n, seed))
}

/// The saturation scenario: a Lublin99 trace with submit times compressed 8×,
/// so offered load far exceeds the machine and the backlog grows to archive
/// scale, with closed-loop dependencies in the mix. This is the regime where
/// per-completion replans used to scan the whole backlog (O(queue) per event,
/// super-linear end to end); the backlog index plus batched completion
/// consults keep it at engine speed.
fn saturated_closed_jobs(n: usize, seed: u64) -> Vec<SimJob> {
    let mut log = Lublin99::default().generate(n, seed);
    for j in &mut log.jobs {
        j.submit_time /= 8;
    }
    infer_dependencies(&mut log, &InferenceParams::default());
    SimJob::from_log(&log)
}

/// A dense narrow-job workload on a wide machine: thousands of jobs run
/// concurrently, so per-event O(running) work is catastrophic. This is the
/// scenario that demonstrates the calendar's per-event cost does not scale
/// with the running-set size.
fn wide_machine_jobs(n: usize) -> Vec<SimJob> {
    (0..n)
        .map(|i| {
            SimJob::rigid(
                i as u64 + 1,
                i as f64 * 0.5,                 // one arrival every 500 ms
                900.0 + (i % 7) as f64 * 120.0, // ~15-30 min runtimes
                1 + (i % 4) as u32,             // 1-4 processors
            )
        })
        .collect()
}

fn scenarios(scale: &str) -> Vec<Scenario> {
    let sizes: &[usize] = match scale {
        "full" => &[10_000, 100_000, 1_000_000],
        _ => &[10_000],
    };
    let mut out = Vec::new();
    for &n in sizes {
        let js = lublin_jobs(n, 42);
        let tag = if n >= 1_000_000 {
            format!("{}m", n / 1_000_000)
        } else {
            format!("{}k", n / 1000)
        };
        for sched in ["fcfs", "easy", "gang"] {
            out.push(Scenario {
                name: format!("{sched}_{tag}_open"),
                scheduler: sched,
                engine: EngineKind::Calendar,
                config: SimConfig::new(MACHINE),
                jobs: js.clone(),
            });
        }
        // Closed loop and outage-driven variants under EASY.
        let mut log = Lublin99::default().generate(n, 42);
        infer_dependencies(&mut log, &InferenceParams::default());
        out.push(Scenario {
            name: format!("easy_{tag}_closed"),
            scheduler: "easy",
            engine: EngineKind::Calendar,
            config: SimConfig::new(MACHINE).closed_loop(),
            jobs: SimJob::from_log(&log),
        });
        let horizon = js.iter().map(|j| j.submit as i64).max().unwrap_or(0) + 86_400;
        let outages = OutageGenerator::for_machine(MACHINE).generate(horizon, 4242);
        out.push(Scenario {
            name: format!("easy_{tag}_outages"),
            scheduler: "easy",
            engine: EngineKind::Calendar,
            config: SimConfig::new(MACHINE).with_outages(outages),
            jobs: js.clone(),
        });
        // Overloaded closed-loop saturation: the backlog-index acceptance
        // scenario (1M-job overloaded EASY is the headline number).
        let saturated = saturated_closed_jobs(n, 42);
        // `conservative` here is the persistent-calendar backfiller: one
        // reservation per queued job, held across reacts — the regime that
        // used to be cubic and now rides the same saturation scenario as the
        // cheap policies (same order of wall time as EASY at 1M jobs).
        for sched in ["easy", "gang", "fcfs", "conservative"] {
            out.push(Scenario {
                name: format!("{sched}_{tag}_saturated_closed"),
                scheduler: sched,
                engine: EngineKind::Calendar,
                config: SimConfig::new(MACHINE).closed_loop(),
                jobs: saturated.clone(),
            });
        }
        // Reference-engine (seed-complexity) baselines; skipped at 1M where the
        // linear rescans take impractically long.
        if n <= 100_000 {
            for sched in ["fcfs", "easy"] {
                out.push(Scenario {
                    name: format!("reference_{sched}_{tag}_open"),
                    scheduler: sched,
                    engine: EngineKind::Reference,
                    config: SimConfig::new(MACHINE),
                    jobs: js.clone(),
                });
            }
        }
    }
    // The running-set scaling probe: ~1 800 concurrent jobs on a wide
    // machine. The 20k probe runs at every scale so the full baseline covers
    // the quick CI run; full adds the larger 60k variant.
    let wide_sizes: &[usize] = if scale == "full" {
        &[20_000, 60_000]
    } else {
        &[20_000]
    };
    for &wide_n in wide_sizes {
        for (engine, label) in [
            (EngineKind::Calendar, "calendar"),
            (EngineKind::Reference, "reference"),
        ] {
            out.push(Scenario {
                name: format!("widemachine_{label}_{}k", wide_n / 1000),
                scheduler: "greedy-fcfs",
                engine,
                config: SimConfig::new(8192),
                jobs: wide_machine_jobs(wide_n),
            });
        }
    }
    out
}

fn measure(s: &Scenario, repeat: usize) -> Measurement {
    let mut best_ms = f64::INFINITY;
    let mut events = 0;
    let mut finished = 0;
    let mut mean_response = 0.0;
    for _ in 0..repeat.max(1) {
        let machine = s.config.machine_size;
        let mut scheduler = by_name(s.scheduler, machine).expect("known scheduler");
        let sim = Simulation::with_engine(s.config.clone(), s.jobs.clone(), s.engine);
        let t0 = Instant::now();
        let result = sim.run(scheduler.as_mut());
        let wall = t0.elapsed().as_secs_f64() * 1e3;
        best_ms = best_ms.min(wall);
        events = result.events_processed;
        finished = result.finished.len();
        mean_response = result.mean_response_time();
    }
    Measurement {
        name: s.name.clone(),
        scheduler: s.scheduler.to_string(),
        engine: match s.engine {
            EngineKind::Calendar => "calendar",
            EngineKind::Reference => "reference",
        },
        jobs: s.jobs.len(),
        events,
        finished,
        mean_response,
        wall_ms: best_ms,
        events_per_sec: events as f64 / (best_ms / 1e3).max(1e-9),
    }
}

fn render_json(scale: &str, ms: &[Measurement]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"version\": 1,\n");
    out.push_str(&format!("  \"scale\": \"{}\",\n", json_escape(scale)));
    out.push_str("  \"scenarios\": [\n");
    for (i, m) in ms.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"scheduler\": \"{}\", \"engine\": \"{}\", \"jobs\": {}, \"events\": {}, \"finished\": {}, \"mean_response\": {}, \"wall_ms\": {}, \"events_per_sec\": {}}}{}\n",
            json_escape(&m.name),
            json_escape(&m.scheduler),
            m.engine,
            m.jobs,
            m.events,
            m.finished,
            json_num(m.mean_response),
            json_num((m.wall_ms * 1000.0).round() / 1000.0),
            json_num(m.events_per_sec.round()),
            if i + 1 == ms.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Pull one scenario field out of a baseline snapshot produced by this tool.
/// (Line-oriented: every scenario is a single JSON object line.)
fn baseline_field(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\": ");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    Some(rest[..end].trim().trim_matches('"').to_string())
}

fn compare_to_baseline(baseline: &str, ms: &[Measurement]) -> (usize, usize) {
    let mut drifted = 0;
    let mut regressed = 0;
    // A measured scenario with no baseline entry is drift too: result-drift
    // detection must cover every scenario, so adding or renaming one requires
    // regenerating the snapshot.
    for m in ms {
        let pat = format!("\"name\": \"{}\"", json_escape(&m.name));
        if !baseline.contains(&pat) {
            println!(
                "::error::sim-bench: `{}` is measured but missing from the baseline — regenerate BENCH_sim.json",
                m.name
            );
            drifted += 1;
        }
    }
    for line in baseline.lines() {
        let Some(name) = baseline_field(line, "name") else {
            continue;
        };
        let Some(m) = ms.iter().find(|m| m.name == name) else {
            println!("::warning::sim-bench: baseline scenario `{name}` no longer measured");
            continue;
        };
        let events: u64 = baseline_field(line, "events")
            .and_then(|v| v.parse().ok())
            .unwrap_or(0);
        let finished: usize = baseline_field(line, "finished")
            .and_then(|v| v.parse().ok())
            .unwrap_or(0);
        // Compare the canonical rendering, not a re-parsed f64: the snapshot
        // stores mean_response at 6 fractional digits.
        let mean_response = baseline_field(line, "mean_response").unwrap_or_default();
        if events != m.events
            || finished != m.finished
            || mean_response != json_num(m.mean_response)
        {
            println!(
                "::error::sim-bench: `{name}` result drift: events {} -> {}, finished {} -> {}, mean_response {} -> {}",
                events,
                m.events,
                finished,
                m.finished,
                mean_response,
                json_num(m.mean_response)
            );
            drifted += 1;
        }
        let base_eps: f64 = baseline_field(line, "events_per_sec")
            .and_then(|v| v.parse().ok())
            .unwrap_or(0.0);
        if base_eps > 0.0 && m.events_per_sec < 0.8 * base_eps {
            println!(
                "::warning::sim-bench: `{name}` events/sec regressed >20%: {:.0} (baseline {:.0})",
                m.events_per_sec, base_eps
            );
            regressed += 1;
        }
    }
    (drifted, regressed)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = "quick".to_string();
    let mut out_path: Option<String> = None;
    let mut baseline_path: Option<String> = None;
    let mut repeat = 3usize;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--scale" => scale = it.next().cloned().unwrap_or_else(|| "quick".into()),
            "--out" => out_path = it.next().cloned(),
            "--baseline" => baseline_path = it.next().cloned(),
            "--repeat" => repeat = it.next().and_then(|v| v.parse().ok()).unwrap_or(3),
            "-h" | "--help" => {
                println!(
                    "sim-bench [--scale quick|full] [--out FILE] [--baseline FILE] [--repeat N]"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("sim-bench: unknown argument `{other}`");
                return ExitCode::FAILURE;
            }
        }
    }

    let ms: Vec<Measurement> = scenarios(&scale)
        .iter()
        .map(|s| {
            let m = measure(s, repeat);
            println!(
                "{:<32} {:>9} events {:>10.1} ms {:>12.0} events/sec",
                m.name, m.events, m.wall_ms, m.events_per_sec
            );
            m
        })
        .collect();

    let json = render_json(&scale, &ms);
    match &out_path {
        Some(p) => {
            if let Err(e) = std::fs::write(p, &json) {
                eprintln!("sim-bench: cannot write {p}: {e}");
                return ExitCode::FAILURE;
            }
            println!("wrote {p}");
        }
        None => print!("{json}"),
    }

    if let Some(p) = baseline_path {
        match std::fs::read_to_string(&p) {
            Ok(base) => {
                let (drifted, regressed) = compare_to_baseline(&base, &ms);
                println!(
                    "baseline {p}: {drifted} result drift(s), {regressed} perf regression warning(s)"
                );
                if drifted > 0 {
                    return ExitCode::FAILURE;
                }
            }
            Err(e) => {
                eprintln!("sim-bench: cannot read baseline {p}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
