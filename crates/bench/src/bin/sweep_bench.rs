//! `sweep-bench` — the experiment-table benchmark snapshot tool.
//!
//! The `psbench sweep` experiment tables (E1..E10, including the E10 model
//! fidelity scores) are deterministic: every cell is derived from pinned
//! seeds and integer-exact sketches, so their contents are machine
//! independent. This tool runs every experiment at a fixed scale and emits a
//! machine-readable JSON snapshot with, per experiment, a fingerprint of the
//! rendered table, the row count, and the wall time. The committed
//! `BENCH_sweep.json` is such a snapshot; CI regenerates a quick run and
//! diffs it against the baseline, mirroring the `sim-bench` step:
//!
//! * **result drift** (fingerprint or row count changed) is an error — a
//!   mismatch means an experiment's numbers changed and must be acknowledged
//!   by regenerating the baseline;
//! * **performance regressions** (> 20% wall-time growth) produce warnings —
//!   absolute speed varies across machines, so they do not fail the build.
//!
//! ```text
//! sweep-bench [--scale quick|full] [--out BENCH_sweep.json] [--baseline BENCH_sweep.json] [--repeat N]
//! ```

use psbench_analyze::report::{json_escape, json_num};
use psbench_core::{experiment_ids, run_experiment, Scale};
use psbench_store::fnv1a_64_hex;
use std::process::ExitCode;
use std::time::Instant;

struct Measurement {
    id: &'static str,
    title: String,
    rows: usize,
    fingerprint: String,
    wall_ms: f64,
}

fn measure(id: &'static str, scale: Scale, repeat: usize) -> Measurement {
    let mut best_ms = f64::INFINITY;
    let mut table = None;
    for _ in 0..repeat.max(1) {
        let t0 = Instant::now();
        let t = run_experiment(id, scale).expect("known experiment id");
        best_ms = best_ms.min(t0.elapsed().as_secs_f64() * 1e3);
        table = Some(t);
    }
    let table = table.expect("at least one repeat");
    // Title + headers + every cell: any numeric drift changes the hash.
    let rendered = format!("{}\n{}", table.title, table.to_csv());
    Measurement {
        id,
        title: table.title.clone(),
        rows: table.rows.len(),
        // The workspace's canonical FNV-1a (psbench-store): same constants,
        // same hex rendering, so committed baselines stay valid.
        fingerprint: fnv1a_64_hex(rendered.as_bytes()),
        wall_ms: best_ms,
    }
}

fn render_json(scale_name: &str, ms: &[Measurement]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"version\": 1,\n");
    out.push_str(&format!("  \"scale\": \"{}\",\n", json_escape(scale_name)));
    out.push_str("  \"experiments\": [\n");
    for (i, m) in ms.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"id\": \"{}\", \"title\": \"{}\", \"rows\": {}, \"fingerprint\": \"{}\", \"wall_ms\": {}}}{}\n",
            json_escape(m.id),
            json_escape(&m.title),
            m.rows,
            m.fingerprint,
            json_num((m.wall_ms * 1000.0).round() / 1000.0),
            if i + 1 == ms.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Pull one field out of a baseline line (line-oriented snapshots, one JSON
/// object per experiment line).
fn baseline_field(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\": ");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    Some(rest[..end].trim().trim_matches('"').to_string())
}

fn compare_to_baseline(baseline: &str, ms: &[Measurement]) -> (usize, usize) {
    let mut drifted = 0;
    let mut regressed = 0;
    for m in ms {
        let pat = format!("\"id\": \"{}\"", m.id);
        if !baseline.contains(&pat) {
            println!(
                "::error::sweep-bench: `{}` is measured but missing from the baseline — regenerate BENCH_sweep.json",
                m.id
            );
            drifted += 1;
        }
    }
    for line in baseline.lines() {
        let Some(id) = baseline_field(line, "id") else {
            continue;
        };
        let Some(m) = ms.iter().find(|m| m.id == id) else {
            println!("::warning::sweep-bench: baseline experiment `{id}` no longer measured");
            continue;
        };
        let fingerprint = baseline_field(line, "fingerprint").unwrap_or_default();
        let rows: usize = baseline_field(line, "rows")
            .and_then(|v| v.parse().ok())
            .unwrap_or(0);
        if fingerprint != m.fingerprint || rows != m.rows {
            println!(
                "::error::sweep-bench: `{id}` result drift: fingerprint {} -> {}, rows {} -> {}",
                fingerprint, m.fingerprint, rows, m.rows
            );
            drifted += 1;
        }
        let base_ms: f64 = baseline_field(line, "wall_ms")
            .and_then(|v| v.parse().ok())
            .unwrap_or(0.0);
        if base_ms > 0.0 && m.wall_ms > 1.2 * base_ms {
            println!(
                "::warning::sweep-bench: `{id}` wall time regressed >20%: {:.1} ms (baseline {:.1} ms)",
                m.wall_ms, base_ms
            );
            regressed += 1;
        }
    }
    (drifted, regressed)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale_name = "quick".to_string();
    let mut out_path: Option<String> = None;
    let mut baseline_path: Option<String> = None;
    let mut repeat = 1usize;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--scale" => scale_name = it.next().cloned().unwrap_or_else(|| "quick".into()),
            "--out" => out_path = it.next().cloned(),
            "--baseline" => baseline_path = it.next().cloned(),
            "--repeat" => repeat = it.next().and_then(|v| v.parse().ok()).unwrap_or(1),
            "-h" | "--help" => {
                println!(
                    "sweep-bench [--scale quick|full] [--out FILE] [--baseline FILE] [--repeat N]"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("sweep-bench: unknown argument `{other}`");
                return ExitCode::FAILURE;
            }
        }
    }
    let scale = match scale_name.as_str() {
        "quick" => Scale::quick(),
        "full" => Scale::full(),
        other => {
            eprintln!("sweep-bench: unknown scale `{other}` (expected quick or full)");
            return ExitCode::FAILURE;
        }
    };

    let ms: Vec<Measurement> = experiment_ids()
        .iter()
        .map(|id| {
            let m = measure(id, scale, repeat);
            println!(
                "{:<6} {:>4} rows {} {:>10.1} ms",
                m.id, m.rows, m.fingerprint, m.wall_ms
            );
            m
        })
        .collect();

    let json = render_json(&scale_name, &ms);
    match &out_path {
        Some(p) => {
            if let Err(e) = std::fs::write(p, &json) {
                eprintln!("sweep-bench: cannot write {p}: {e}");
                return ExitCode::FAILURE;
            }
            println!("wrote {p}");
        }
        None => print!("{json}"),
    }

    if let Some(p) = baseline_path {
        match std::fs::read_to_string(&p) {
            Ok(base) => {
                let (drifted, regressed) = compare_to_baseline(&base, &ms);
                println!(
                    "baseline {p}: {drifted} result drift(s), {regressed} perf regression warning(s)"
                );
                if drifted > 0 {
                    return ExitCode::FAILURE;
                }
            }
            Err(e) => {
                eprintln!("sweep-bench: cannot read baseline {p}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
