//! `meta-bench` — the sharded-metasystem benchmark snapshot tool.
//!
//! Runs a fixed grid of metasystem cells (sites x jobs x dispatch policy)
//! through [`run_metasystem`] and emits a machine-readable JSON snapshot
//! with, per cell, the merged result's canonical fingerprint, the finished
//! job count, the wall time, and the event throughput. The committed
//! `BENCH_meta.json` is such a snapshot; CI regenerates a quick run and
//! diffs it against the baseline, mirroring the `sim-bench` / `sweep-bench`
//! steps:
//!
//! * **result drift** (fingerprint or finished count changed) is an error —
//!   the epoch loop's results are bit-stable across machines and thread
//!   counts, so a mismatch means the metasystem's semantics changed and must
//!   be acknowledged by regenerating the baseline;
//! * **performance regressions** (> 20% wall-time growth) produce warnings —
//!   absolute speed varies across machines, so they do not fail the build.
//!
//! Every cell is measured at `--threads` (default 1, the serial twin —
//! fingerprints are thread-count independent by construction, so the
//! baseline stays valid under any setting).
//!
//! ```text
//! meta-bench [--scale quick|full] [--threads N] [--out BENCH_meta.json] [--baseline BENCH_meta.json] [--repeat N]
//! ```

use psbench_analyze::report::{json_escape, json_num};
use psbench_core::{WorkloadDef, WorkloadKind};
use psbench_metasim::{run_metasystem, standard_shard_fleet, DispatchPolicy, MetaConfig};
use psbench_sim::SimJob;
use std::process::ExitCode;
use std::time::Instant;

/// One grid cell: a fleet size, a stream length, and a dispatch policy.
struct Cell {
    sites: usize,
    jobs: usize,
    dispatch: DispatchPolicy,
}

fn grid(scale: &str) -> Vec<Cell> {
    let mut cells = Vec::new();
    // Every dispatch policy over a small fleet: the policy-semantics guard.
    for &dispatch in DispatchPolicy::all() {
        cells.push(Cell {
            sites: 16,
            jobs: 20_000,
            dispatch,
        });
    }
    // Fleet-size scaling under the default policy: the throughput guard.
    cells.push(Cell {
        sites: 64,
        jobs: 50_000,
        dispatch: DispatchPolicy::LeastPressure,
    });
    if scale == "full" {
        cells.push(Cell {
            sites: 256,
            jobs: 250_000,
            dispatch: DispatchPolicy::LeastPressure,
        });
        cells.push(Cell {
            sites: 1000,
            jobs: 1_000_000,
            dispatch: DispatchPolicy::LeastPressure,
        });
    }
    cells
}

struct Measurement {
    id: String,
    finished: usize,
    fingerprint: String,
    wall_ms: f64,
    events_per_sec: f64,
}

/// The same stream `psbench metasim` routes: the Lublin '99 model on a
/// 128-proc reference machine, interarrivals compressed by `1/sites`,
/// renumbered onto unique ids below the migration band.
fn stream(sites: usize, jobs: usize) -> Vec<SimJob> {
    let def = WorkloadDef {
        interarrival_scale: 1.0 / sites as f64,
        ..WorkloadDef::new(WorkloadKind::Lublin99, 128, jobs, 1)
    };
    let mut jobs = SimJob::from_log(&def.generate());
    for (i, job) in jobs.iter_mut().enumerate() {
        job.id = i as u64 + 1;
        job.preceding = None;
        job.think_time = 0.0;
    }
    jobs
}

fn measure(cell: &Cell, threads: usize, repeat: usize) -> Measurement {
    let specs = standard_shard_fleet(cell.sites, "easy");
    let jobs = stream(cell.sites, cell.jobs);
    let cfg = MetaConfig::new(cell.dispatch).with_threads(threads);
    let mut best_ms = f64::INFINITY;
    let mut meta = None;
    for _ in 0..repeat.max(1) {
        let t0 = Instant::now();
        let m = run_metasystem(&specs, &jobs, &cfg).expect("known scheduler");
        best_ms = best_ms.min(t0.elapsed().as_secs_f64() * 1e3);
        meta = Some(m);
    }
    let meta = meta.expect("at least one repeat");
    Measurement {
        id: format!("s{}-j{}-{}", cell.sites, cell.jobs, cell.dispatch.name()),
        finished: meta.result.finished.len(),
        fingerprint: format!("{:016x}", meta.fingerprint()),
        wall_ms: best_ms,
        events_per_sec: meta.result.events_processed as f64 / (best_ms / 1e3).max(1e-9),
    }
}

fn render_json(scale_name: &str, threads: usize, ms: &[Measurement]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"version\": 1,\n");
    out.push_str(&format!("  \"scale\": \"{}\",\n", json_escape(scale_name)));
    out.push_str(&format!("  \"threads\": {threads},\n"));
    out.push_str("  \"cells\": [\n");
    for (i, m) in ms.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"id\": \"{}\", \"finished\": {}, \"fingerprint\": \"{}\", \"wall_ms\": {}, \"events_per_sec\": {}}}{}\n",
            json_escape(&m.id),
            m.finished,
            m.fingerprint,
            json_num((m.wall_ms * 1000.0).round() / 1000.0),
            json_num(m.events_per_sec.round()),
            if i + 1 == ms.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Pull one field out of a baseline line (line-oriented snapshots, one JSON
/// object per cell line).
fn baseline_field(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\": ");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    Some(rest[..end].trim().trim_matches('"').to_string())
}

fn compare_to_baseline(baseline: &str, ms: &[Measurement]) -> (usize, usize) {
    let mut drifted = 0;
    let mut regressed = 0;
    for m in ms {
        let pat = format!("\"id\": \"{}\"", m.id);
        if !baseline.contains(&pat) {
            println!(
                "::error::meta-bench: `{}` is measured but missing from the baseline — regenerate BENCH_meta.json",
                m.id
            );
            drifted += 1;
        }
    }
    for line in baseline.lines() {
        let Some(id) = baseline_field(line, "id") else {
            continue;
        };
        let Some(m) = ms.iter().find(|m| m.id == id) else {
            println!("::warning::meta-bench: baseline cell `{id}` no longer measured");
            continue;
        };
        let fingerprint = baseline_field(line, "fingerprint").unwrap_or_default();
        let finished: usize = baseline_field(line, "finished")
            .and_then(|v| v.parse().ok())
            .unwrap_or(0);
        if fingerprint != m.fingerprint || finished != m.finished {
            println!(
                "::error::meta-bench: `{id}` result drift: fingerprint {} -> {}, finished {} -> {}",
                fingerprint, m.fingerprint, finished, m.finished
            );
            drifted += 1;
        }
        let base_ms: f64 = baseline_field(line, "wall_ms")
            .and_then(|v| v.parse().ok())
            .unwrap_or(0.0);
        if base_ms > 0.0 && m.wall_ms > 1.2 * base_ms {
            println!(
                "::warning::meta-bench: `{id}` wall time regressed >20%: {:.1} ms (baseline {:.1} ms)",
                m.wall_ms, base_ms
            );
            regressed += 1;
        }
    }
    (drifted, regressed)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale_name = "quick".to_string();
    let mut out_path: Option<String> = None;
    let mut baseline_path: Option<String> = None;
    let mut repeat = 1usize;
    let mut threads = 1usize;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--scale" => scale_name = it.next().cloned().unwrap_or_else(|| "quick".into()),
            "--out" => out_path = it.next().cloned(),
            "--baseline" => baseline_path = it.next().cloned(),
            "--repeat" => repeat = it.next().and_then(|v| v.parse().ok()).unwrap_or(1),
            "--threads" => threads = it.next().and_then(|v| v.parse().ok()).unwrap_or(1).max(1),
            "-h" | "--help" => {
                println!(
                    "meta-bench [--scale quick|full] [--threads N] [--out FILE] [--baseline FILE] [--repeat N]"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("meta-bench: unknown argument `{other}`");
                return ExitCode::FAILURE;
            }
        }
    }
    if scale_name != "quick" && scale_name != "full" {
        eprintln!("meta-bench: unknown scale `{scale_name}` (expected quick or full)");
        return ExitCode::FAILURE;
    }

    let ms: Vec<Measurement> = grid(&scale_name)
        .iter()
        .map(|cell| {
            let m = measure(cell, threads, repeat);
            println!(
                "{:<32} {:>8} finished {} {:>10.1} ms {:>12.0} events/s",
                m.id, m.finished, m.fingerprint, m.wall_ms, m.events_per_sec
            );
            m
        })
        .collect();

    let json = render_json(&scale_name, threads, &ms);
    match &out_path {
        Some(p) => {
            if let Err(e) = std::fs::write(p, &json) {
                eprintln!("meta-bench: cannot write {p}: {e}");
                return ExitCode::FAILURE;
            }
            println!("wrote {p}");
        }
        None => print!("{json}"),
    }

    if let Some(p) = baseline_path {
        match std::fs::read_to_string(&p) {
            Ok(base) => {
                let (drifted, regressed) = compare_to_baseline(&base, &ms);
                println!(
                    "baseline {p}: {drifted} result drift(s), {regressed} perf regression warning(s)"
                );
                if drifted > 0 {
                    return ExitCode::FAILURE;
                }
            }
            Err(e) => {
                eprintln!("meta-bench: cannot read baseline {p}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
