//! The Downey '97 model ("A parallel workload model and its implications for
//! processor allocation").
//!
//! Downey observed that the *cumulative* runtime distribution of jobs is close to
//! log-uniform over several orders of magnitude, and that cluster sizes are also
//! roughly log-uniform. His model generates jobs by total work (processor-seconds)
//! plus a speedup profile, which also makes it the natural source of *moldable*
//! jobs (see [`crate::flexible`]). For the rigid-workload interface the model picks
//! the requested size log-uniformly and derives the runtime from the work and the
//! speedup at that size.

use crate::arrival::{ArrivalProcess, PoissonArrivals};
use crate::dist::{log_uniform, log_uniform_size};
use crate::flexible::{DowneySpeedup, SpeedupModel};
use crate::model::{assemble_log, model_rng, CommonParams, GeneratedJob, WorkloadModel};
use psbench_swf::SwfLog;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Parameters of the Downey '97 model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Downey97 {
    /// Parameters shared by all models.
    pub common: CommonParams,
    /// Mean interarrival time in seconds.
    pub mean_interarrival: f64,
    /// Lower bound of the log-uniform *sequential* runtime distribution, seconds.
    pub min_seq_runtime: f64,
    /// Upper bound of the log-uniform sequential runtime distribution, seconds.
    pub max_seq_runtime: f64,
    /// Range of the average-parallelism parameter `A` of the speedup model
    /// (sampled log-uniformly within `[a_min, a_max]`).
    pub a_min: f64,
    /// Upper bound of `A`.
    pub a_max: f64,
    /// Range of the variance-of-parallelism parameter `sigma` (sampled uniformly).
    pub sigma_min: f64,
    /// Upper bound of `sigma`.
    pub sigma_max: f64,
}

impl Default for Downey97 {
    fn default() -> Self {
        Downey97 {
            common: CommonParams::default(),
            mean_interarrival: 900.0,
            min_seq_runtime: 60.0,
            max_seq_runtime: 200_000.0,
            a_min: 2.0,
            a_max: 150.0,
            sigma_min: 0.0,
            sigma_max: 2.0,
        }
    }
}

impl Downey97 {
    /// Model with default parameters on a machine of the given size.
    pub fn with_machine_size(machine_size: u32) -> Self {
        Downey97 {
            common: CommonParams::default().with_machine_size(machine_size),
            ..Downey97::default()
        }
    }

    /// Sample one job's intrinsic description: sequential runtime and speedup profile.
    pub fn sample_application<R: Rng + ?Sized>(&self, rng: &mut R) -> (f64, DowneySpeedup) {
        let seq = log_uniform(rng, self.min_seq_runtime, self.max_seq_runtime);
        let a = log_uniform(rng, self.a_min.max(1.0), self.a_max.max(self.a_min + 1.0));
        let sigma = rng.gen_range(self.sigma_min..=self.sigma_max);
        (seq, DowneySpeedup { a, sigma })
    }
}

impl WorkloadModel for Downey97 {
    fn name(&self) -> &'static str {
        "downey97"
    }

    fn machine_size(&self) -> u32 {
        self.common.machine_size
    }

    fn generate(&self, n_jobs: usize, seed: u64) -> SwfLog {
        let mut rng = model_rng(seed);
        let arrivals = PoissonArrivals::new(self.mean_interarrival).arrivals(&mut rng, n_jobs);
        let mut jobs = Vec::with_capacity(n_jobs);
        for &submit in arrivals.iter().take(n_jobs) {
            let (seq_runtime, speedup) = self.sample_application(&mut rng);
            let procs = log_uniform_size(&mut rng, self.common.machine_size);
            let runtime = (seq_runtime / speedup.speedup(procs)).ceil() as i64;
            jobs.push(GeneratedJob {
                submit_time: submit,
                run_time: runtime.max(1),
                procs,
                interactive: false,
            });
        }
        assemble_log(&mut rng, self.name(), &self.common, jobs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psbench_metrics::stats::workload_features;
    use psbench_swf::validate;

    #[test]
    fn generates_conforming_log() {
        let log = Downey97::default().generate(2_000, 31);
        assert_eq!(log.len(), 2_000);
        assert!(validate(&log).is_clean());
    }

    #[test]
    fn sizes_favor_small_jobs() {
        let log = Downey97::default().generate(4_000, 32);
        let f = workload_features("d97", &log);
        let small = log.summaries().filter(|j| j.procs().unwrap() <= 8).count();
        let large = log.summaries().filter(|j| j.procs().unwrap() > 64).count();
        assert!(small > large * 2, "small {small} large {large}");
        assert!(f.mean_procs < 64.0);
    }

    #[test]
    fn runtimes_span_orders_of_magnitude() {
        let log = Downey97::default().generate(4_000, 33);
        let min = log.summaries().map(|j| j.run_time.unwrap()).min().unwrap();
        let max = log.summaries().map(|j| j.run_time.unwrap()).max().unwrap();
        assert!(
            max as f64 / min.max(1) as f64 > 100.0,
            "min {min} max {max}"
        );
        let f = workload_features("d97", &log);
        assert!(f.runtime_cv > 1.0, "cv {}", f.runtime_cv);
    }

    #[test]
    fn sample_application_in_ranges() {
        let model = Downey97::default();
        let mut rng = model_rng(9);
        for _ in 0..500 {
            let (seq, sp) = model.sample_application(&mut rng);
            assert!(seq >= model.min_seq_runtime && seq <= model.max_seq_runtime);
            assert!(sp.a >= model.a_min && sp.a <= model.a_max);
            assert!(sp.sigma >= model.sigma_min && sp.sigma <= model.sigma_max);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = Downey97::default().generate(300, 8);
        let b = Downey97::default().generate(300, 8);
        assert_eq!(a.jobs, b.jobs);
        let m = Downey97::with_machine_size(256);
        assert_eq!(m.machine_size(), 256);
        assert_eq!(m.name(), "downey97");
    }
}
