//! Flexible (moldable / malleable) job models and the internal-structure strawman.
//!
//! "Flexible job models attempt to describe how an application would perform with
//! different resource allocations" (Section 2.1). Two approaches appear in the
//! paper and are both implemented here:
//!
//! 1. total work plus a *speedup function* — the Downey and Sevcik families — which
//!    lets a scheduler choose the allocation (moldable jobs, used by adaptive
//!    partitioning in experiment E9);
//! 2. an explicit model of the *internal structure* of the application — the
//!    strawman of \[23\]: number of processes, number of barriers, granularity, and
//!    the variance of these attributes — which lets a simulator model the
//!    interaction between scheduling and synchronization (gang scheduling).

use rand::Rng;
use serde::{Deserialize, Serialize};

/// A speedup model: how much faster the job runs on `n` processors than on one.
pub trait SpeedupModel {
    /// Speedup on `n` processors (`speedup(1) == 1`).
    fn speedup(&self, n: u32) -> f64;

    /// Runtime on `n` processors of a job whose sequential runtime is `seq_runtime`.
    fn runtime(&self, seq_runtime: f64, n: u32) -> f64 {
        seq_runtime / self.speedup(n).max(f64::MIN_POSITIVE)
    }

    /// Efficiency on `n` processors (`speedup / n`).
    fn efficiency(&self, n: u32) -> f64 {
        self.speedup(n) / n as f64
    }
}

/// Downey's two-parameter speedup model: `A` is the average parallelism and `sigma`
/// the variance in parallelism (σ = 0 gives ideal speedup up to `A`, larger σ a
/// smoother, lower curve).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DowneySpeedup {
    /// Average parallelism of the application.
    pub a: f64,
    /// Variance of parallelism (0 = ideal up to `a`).
    pub sigma: f64,
}

impl SpeedupModel for DowneySpeedup {
    fn speedup(&self, n: u32) -> f64 {
        let n = n.max(1) as f64;
        let a = self.a.max(1.0);
        let sigma = self.sigma.max(0.0);
        if sigma <= f64::EPSILON {
            return n.min(a);
        }
        // Downey's model, low-variance branch (sigma <= 1) and high-variance branch.
        if sigma <= 1.0 {
            if n <= a {
                a * n / (a + sigma * (n - 1.0) / 2.0)
            } else if n <= 2.0 * a - 1.0 {
                a * n / (sigma * (a - 0.5) + n * (1.0 - sigma / 2.0))
            } else {
                a
            }
        } else {
            let bound = a + a * sigma - sigma;
            if n <= bound {
                n * a * (sigma + 1.0) / (sigma * (n + a - 1.0) + a)
            } else {
                a
            }
        }
    }
}

/// Sevcik-style speedup with explicit sequential fraction and per-processor
/// overhead: `T(n) = f·T1 + (1−f)·T1/n + c·(n−1)`, expressed as a speedup.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SevcikSpeedup {
    /// Sequential (non-parallelizable) fraction of the work, in `[0,1]`.
    pub sequential_fraction: f64,
    /// Per-processor overhead as a fraction of the sequential runtime.
    pub overhead_per_proc: f64,
}

impl SpeedupModel for SevcikSpeedup {
    fn speedup(&self, n: u32) -> f64 {
        let n = n.max(1) as f64;
        let f = self.sequential_fraction.clamp(0.0, 1.0);
        let c = self.overhead_per_proc.max(0.0);
        let t1 = 1.0;
        let tn = f * t1 + (1.0 - f) * t1 / n + c * (n - 1.0);
        (t1 / tn).max(f64::MIN_POSITIVE)
    }
}

/// A moldable job: total sequential work plus a speedup profile. The scheduler
/// chooses the allocation; [`MoldableJob::runtime_on`] tells it the consequence.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MoldableJob {
    /// Job identifier (aligned with the rigid job id when derived from a log).
    pub job_id: u64,
    /// Arrival time, seconds.
    pub submit_time: i64,
    /// Sequential runtime (runtime on one processor), seconds.
    pub seq_runtime: f64,
    /// Downey speedup parameters.
    pub speedup: DowneySpeedup,
    /// Largest allocation the job can use (0 = unbounded / machine size).
    pub max_procs: u32,
}

impl MoldableJob {
    /// Runtime (seconds) if allocated `n` processors.
    pub fn runtime_on(&self, n: u32) -> f64 {
        let n = if self.max_procs > 0 {
            n.min(self.max_procs)
        } else {
            n
        };
        self.speedup.runtime(self.seq_runtime, n.max(1))
    }

    /// The allocation in `1..=limit` that minimizes runtime (ties go to the smaller
    /// allocation, which wastes fewer processors).
    pub fn best_allocation(&self, limit: u32) -> u32 {
        let limit = if self.max_procs > 0 {
            limit.min(self.max_procs)
        } else {
            limit
        };
        let mut best = 1u32;
        let mut best_rt = self.runtime_on(1);
        for n in 2..=limit.max(1) {
            let rt = self.runtime_on(n);
            if rt < best_rt - 1e-9 {
                best = n;
                best_rt = rt;
            }
        }
        best
    }
}

/// The internal-structure strawman of \[23\]: the application is a sequence of
/// barrier-separated phases executed by `processes` processes; each phase does
/// `granularity` seconds of computation per process (with some variance across
/// processes) and then synchronizes at a barrier.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InternalStructure {
    /// Number of processes (threads of the parallel job).
    pub processes: u32,
    /// Number of barriers (phases) in the application.
    pub barriers: u32,
    /// Mean computation time between barriers per process, seconds.
    pub granularity: f64,
    /// Coefficient of variation of the per-process phase lengths (load imbalance).
    pub variance: f64,
}

impl InternalStructure {
    /// Expected runtime when all processes run concurrently and synchronize at each
    /// barrier: each phase costs the *maximum* of the per-process times, which grows
    /// with the imbalance. A simple order-statistics approximation is used: the
    /// expected maximum of `p` samples with CV `v` is `granularity * (1 + v * sqrt(2 ln p))`.
    pub fn coscheduled_runtime(&self) -> f64 {
        let p = self.processes.max(1) as f64;
        let imbalance = 1.0 + self.variance.max(0.0) * (2.0 * p.ln().max(0.0)).sqrt();
        self.barriers.max(1) as f64 * self.granularity * imbalance
    }

    /// Expected runtime when the processes are *not* coscheduled and every barrier
    /// additionally waits for a fraction of the scheduling quantum: fine-grained
    /// applications suffer, coarse-grained ones barely notice (Section 2.2's
    /// discussion of gang scheduling versus uncoordinated time slicing).
    pub fn uncoordinated_runtime(&self, quantum: f64, miss_probability: f64) -> f64 {
        let per_barrier_penalty = miss_probability.clamp(0.0, 1.0) * quantum.max(0.0) / 2.0;
        self.coscheduled_runtime() + self.barriers.max(1) as f64 * per_barrier_penalty
    }

    /// Slowdown of uncoordinated scheduling relative to coscheduling.
    pub fn uncoordinated_slowdown(&self, quantum: f64, miss_probability: f64) -> f64 {
        self.uncoordinated_runtime(quantum, miss_probability) / self.coscheduled_runtime()
    }
}

/// Sample a random internal structure from the strawman's four parameters, given
/// their means and variances.
pub fn sample_internal_structure<R: Rng + ?Sized>(
    rng: &mut R,
    mean_processes: f64,
    mean_barriers: f64,
    mean_granularity: f64,
    variance: f64,
) -> InternalStructure {
    let processes =
        crate::dist::log_uniform(rng, 1.0, (2.0 * mean_processes).max(2.0)).round() as u32;
    let barriers =
        crate::dist::log_uniform(rng, 1.0, (2.0 * mean_barriers).max(2.0)).round() as u32;
    let granularity = crate::dist::exponential(rng, mean_granularity.max(1e-6));
    InternalStructure {
        processes: processes.max(1),
        barriers: barriers.max(1),
        granularity,
        variance,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn downey_speedup_basic_properties() {
        let sp = DowneySpeedup {
            a: 32.0,
            sigma: 0.5,
        };
        assert!((sp.speedup(1) - 1.0).abs() < 1e-6);
        // monotone non-decreasing in n
        let mut prev = 0.0;
        for n in 1..=256 {
            let s = sp.speedup(n);
            assert!(
                s + 1e-9 >= prev,
                "speedup not monotone at n={n}: {s} < {prev}"
            );
            assert!(s <= n as f64 + 1e-9, "superlinear speedup at n={n}");
            prev = s;
        }
        // saturates at A
        assert!(sp.speedup(1000) <= 32.0 + 1e-9);
    }

    #[test]
    fn downey_sigma_zero_is_ideal_up_to_a() {
        let sp = DowneySpeedup {
            a: 16.0,
            sigma: 0.0,
        };
        assert_eq!(sp.speedup(8), 8.0);
        assert_eq!(sp.speedup(16), 16.0);
        assert_eq!(sp.speedup(64), 16.0);
    }

    #[test]
    fn downey_higher_sigma_means_lower_speedup() {
        let lo = DowneySpeedup {
            a: 32.0,
            sigma: 0.2,
        };
        let hi = DowneySpeedup {
            a: 32.0,
            sigma: 2.0,
        };
        for n in [4u32, 16, 32, 64] {
            assert!(lo.speedup(n) >= hi.speedup(n), "n={n}");
        }
    }

    #[test]
    fn sevcik_speedup_amdahl_limit() {
        let sp = SevcikSpeedup {
            sequential_fraction: 0.1,
            overhead_per_proc: 0.0,
        };
        assert!((sp.speedup(1) - 1.0).abs() < 1e-9);
        assert!(sp.speedup(1_000) < 10.0 + 1e-9); // Amdahl bound 1/f
        assert!(sp.speedup(1_000) > 9.0);
        // overhead makes very large allocations counterproductive
        let oh = SevcikSpeedup {
            sequential_fraction: 0.05,
            overhead_per_proc: 0.01,
        };
        assert!(oh.speedup(200) < oh.speedup(20));
    }

    #[test]
    fn efficiency_decreases_with_allocation() {
        let sp = DowneySpeedup {
            a: 64.0,
            sigma: 1.0,
        };
        assert!(sp.efficiency(4) > sp.efficiency(64));
        assert!(sp.efficiency(1) <= 1.0 + 1e-9);
    }

    #[test]
    fn moldable_job_runtime_and_best_allocation() {
        let job = MoldableJob {
            job_id: 1,
            submit_time: 0,
            seq_runtime: 6400.0,
            speedup: DowneySpeedup {
                a: 32.0,
                sigma: 0.0,
            },
            max_procs: 0,
        };
        assert_eq!(job.runtime_on(1), 6400.0);
        assert_eq!(job.runtime_on(32), 200.0);
        // Beyond A the runtime stops improving, so the best allocation is A.
        assert_eq!(job.best_allocation(128), 32);
        // A cap on the job limits the allocation.
        let capped = MoldableJob {
            max_procs: 8,
            ..job
        };
        assert_eq!(capped.best_allocation(128), 8);
        assert_eq!(capped.runtime_on(64), capped.runtime_on(8));
    }

    #[test]
    fn internal_structure_runtimes() {
        let fine = InternalStructure {
            processes: 32,
            barriers: 1000,
            granularity: 0.01,
            variance: 0.1,
        };
        let coarse = InternalStructure {
            processes: 32,
            barriers: 10,
            granularity: 100.0,
            variance: 0.1,
        };
        // Coscheduled runtimes are roughly barriers * granularity (plus imbalance).
        assert!(fine.coscheduled_runtime() >= 10.0);
        assert!(coarse.coscheduled_runtime() >= 1000.0);
        // Uncoordinated scheduling hurts the fine-grained job far more (relative).
        let q = 0.1; // 100 ms quantum
        let fine_slow = fine.uncoordinated_slowdown(q, 0.5);
        let coarse_slow = coarse.uncoordinated_slowdown(q, 0.5);
        assert!(fine_slow > 2.0, "fine-grained slowdown {fine_slow}");
        assert!(coarse_slow < 1.01, "coarse-grained slowdown {coarse_slow}");
    }

    #[test]
    fn imbalance_increases_runtime() {
        let balanced = InternalStructure {
            processes: 64,
            barriers: 100,
            granularity: 1.0,
            variance: 0.0,
        };
        let imbalanced = InternalStructure {
            variance: 0.5,
            ..balanced
        };
        assert!(imbalanced.coscheduled_runtime() > balanced.coscheduled_runtime());
        assert_eq!(balanced.coscheduled_runtime(), 100.0);
    }

    #[test]
    fn sample_internal_structure_is_positive_and_deterministic() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let s = sample_internal_structure(&mut rng, 32.0, 50.0, 1.0, 0.2);
            assert!(s.processes >= 1);
            assert!(s.barriers >= 1);
            assert!(s.granularity > 0.0);
        }
        let a = {
            let mut r = StdRng::seed_from_u64(9);
            sample_internal_structure(&mut r, 32.0, 50.0, 1.0, 0.2)
        };
        let b = {
            let mut r = StdRng::seed_from_u64(9);
            sample_internal_structure(&mut r, 32.0, 50.0, 1.0, 0.2)
        };
        assert_eq!(a, b);
    }
}
