//! The common interface of rigid-job workload models.
//!
//! "Rigid job models create a sequence of jobs with given arrival time, number of
//! processors, and runtime" (Section 2.1). Every model in this crate implements
//! [`WorkloadModel`]: given a job count and a seed it produces a conforming SWF log,
//! so models, converted raw logs, and archive-style logs are interchangeable inputs
//! to the simulator and the benchmark suite.

use psbench_swf::{clean, SwfHeader, SwfLog, SwfRecord};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A generator of rigid-job workloads in the standard format.
pub trait WorkloadModel: Send + Sync {
    /// A short, stable name used in reports and benchmark suites.
    fn name(&self) -> &'static str;

    /// The machine size (in processors) the model is parameterized for.
    fn machine_size(&self) -> u32;

    /// Generate a workload of `n_jobs` jobs using the given seed. The returned log
    /// is conforming: sorted by submit time, numbered 1..n, first submit at zero.
    fn generate(&self, n_jobs: usize, seed: u64) -> SwfLog;
}

/// How user runtime estimates (SWF field 9, "requested time") are produced from the
/// actual runtimes. Production logs show users overestimate heavily, and backfilling
/// schedulers depend on those estimates, so the model is explicit.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum EstimateModel {
    /// No estimates at all (field left unknown).
    None,
    /// Estimates exactly equal to the runtime (perfect information).
    Exact,
    /// Estimate = runtime multiplied by a factor drawn uniformly from `[1, max_over]`,
    /// clipped to `max_runtime` when given. This reproduces the heavy overestimation
    /// seen in practice.
    UniformOverestimate {
        /// Largest overestimation factor.
        max_over: f64,
    },
}

impl Default for EstimateModel {
    fn default() -> Self {
        EstimateModel::UniformOverestimate { max_over: 5.0 }
    }
}

impl EstimateModel {
    /// Produce an estimate for a job of the given runtime.
    pub fn estimate<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        runtime: i64,
        max_runtime: Option<i64>,
    ) -> Option<i64> {
        let est = match self {
            EstimateModel::None => return None,
            EstimateModel::Exact => runtime,
            EstimateModel::UniformOverestimate { max_over } => {
                let f: f64 = rng.gen_range(1.0..max_over.max(1.0 + f64::EPSILON));
                (runtime as f64 * f).ceil() as i64
            }
        };
        Some(match max_runtime {
            Some(m) => est.min(m).max(runtime.min(m)),
            None => est,
        })
    }
}

/// Parameters shared by all models: the machine, the user population, and how
/// estimates are produced.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CommonParams {
    /// Machine size in processors.
    pub machine_size: u32,
    /// Maximum runtime the system allows (jobs are truncated to this), seconds.
    pub max_runtime: i64,
    /// Number of distinct users to attribute jobs to.
    pub users: u32,
    /// Number of distinct applications (executables).
    pub executables: u32,
    /// Runtime-estimate model.
    pub estimates: EstimateModel,
}

impl Default for CommonParams {
    fn default() -> Self {
        CommonParams {
            machine_size: 128,
            max_runtime: 18 * 3600,
            users: 64,
            executables: 32,
            estimates: EstimateModel::default(),
        }
    }
}

impl CommonParams {
    /// A copy with a different machine size.
    pub fn with_machine_size(mut self, machine_size: u32) -> Self {
        self.machine_size = machine_size;
        self
    }
}

/// A not-yet-numbered job produced by a model: everything except identity fields.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeneratedJob {
    /// Arrival time in seconds (not necessarily rebased to zero yet).
    pub submit_time: i64,
    /// Runtime in seconds.
    pub run_time: i64,
    /// Number of processors.
    pub procs: u32,
    /// True if the job is interactive (queue 0), false for batch.
    pub interactive: bool,
}

/// Assemble generated jobs into a conforming SWF log: assign ids, users,
/// executables and estimates, build the header, sort, rebase and clean.
pub fn assemble_log<R: Rng + ?Sized>(
    rng: &mut R,
    model_name: &str,
    common: &CommonParams,
    jobs: Vec<GeneratedJob>,
) -> SwfLog {
    let mut records: Vec<SwfRecord> = Vec::with_capacity(jobs.len());
    for (i, j) in jobs.iter().enumerate() {
        let runtime = j.run_time.clamp(1, common.max_runtime);
        let procs = j.procs.clamp(1, common.machine_size);
        let mut rec = SwfRecord::rigid(i as u64 + 1, j.submit_time, runtime, procs);
        rec.requested_time = common
            .estimates
            .estimate(rng, runtime, Some(common.max_runtime));
        // Users follow a skewed (zipf-ish) popularity: a few users submit most jobs.
        let u = zipf_like(rng, common.users.max(1));
        rec.user_id = Some(u);
        rec.group_id = Some((u - 1) / 8 + 1);
        rec.executable_id = Some(zipf_like(rng, common.executables.max(1)));
        rec.queue_id = Some(if j.interactive { 0 } else { 1 });
        rec.partition_id = Some(1);
        rec.status = psbench_swf::CompletionStatus::Completed;
        records.push(rec);
    }
    let mut header = SwfHeader::synthetic(model_name, common.machine_size);
    header.max_runtime = Some(common.max_runtime);
    header.queues = Some("queue 0 = interactive, queue 1 = batch".to_string());
    let mut log = SwfLog::new(header, records);
    log.sort_by_submit();
    log.rebase_times();
    log.renumber();
    clean(&mut log);
    log
}

/// Draw a user / executable index from 1..=n with a skewed, roughly Zipf-like
/// popularity (index 1 is the most popular).
pub fn zipf_like<R: Rng + ?Sized>(rng: &mut R, n: u32) -> u32 {
    if n <= 1 {
        return 1;
    }
    // Inverse-transform on weights 1/k using the harmonic approximation.
    let h: f64 = (1..=n).map(|k| 1.0 / k as f64).sum();
    let mut x = rng.gen_range(0.0..h);
    for k in 1..=n {
        let w = 1.0 / k as f64;
        if x < w {
            return k;
        }
        x -= w;
    }
    n
}

/// Convenience wrapper: seed a [`StdRng`] for a model run.
pub fn model_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use psbench_swf::validate;

    #[test]
    fn estimate_models() {
        let mut rng = model_rng(1);
        assert_eq!(EstimateModel::None.estimate(&mut rng, 100, None), None);
        assert_eq!(
            EstimateModel::Exact.estimate(&mut rng, 100, None),
            Some(100)
        );
        for _ in 0..200 {
            let e = EstimateModel::UniformOverestimate { max_over: 4.0 }
                .estimate(&mut rng, 100, Some(1000))
                .unwrap();
            assert!((100..=400).contains(&e), "estimate {e}");
        }
        // clipping to max runtime
        let e = EstimateModel::UniformOverestimate { max_over: 100.0 }
            .estimate(&mut rng, 900, Some(1000))
            .unwrap();
        assert!(e <= 1000);
    }

    #[test]
    fn zipf_like_is_skewed_and_bounded() {
        let mut rng = model_rng(2);
        let mut counts = [0usize; 16];
        for _ in 0..20_000 {
            let k = zipf_like(&mut rng, 16);
            assert!((1..=16).contains(&k));
            counts[(k - 1) as usize] += 1;
        }
        assert!(counts[0] > counts[7]);
        assert!(counts[0] > counts[15] * 3);
        assert_eq!(zipf_like(&mut rng, 1), 1);
    }

    #[test]
    fn assemble_log_produces_conforming_swf() {
        let mut rng = model_rng(3);
        let jobs: Vec<GeneratedJob> = (0..200)
            .map(|i| GeneratedJob {
                submit_time: 1000 + i * 37,
                run_time: 60 + (i % 50) * 10,
                procs: 1 + (i % 64) as u32,
                interactive: i % 5 == 0,
            })
            .collect();
        let common = CommonParams::default();
        let log = assemble_log(&mut rng, "test-model", &common, jobs);
        assert_eq!(log.len(), 200);
        assert!(validate(&log).is_clean());
        assert_eq!(log.first_submit(), 0);
        assert!(log
            .jobs
            .iter()
            .all(|j| j.procs().unwrap() <= common.machine_size));
        assert!(log
            .jobs
            .iter()
            .all(|j| j.run_time.unwrap() <= common.max_runtime));
        assert!(log.jobs.iter().all(|j| j.user_id.unwrap() <= common.users));
        assert!(log.jobs.iter().any(|j| j.queue_id == Some(0)));
        assert!(log.jobs.iter().any(|j| j.queue_id == Some(1)));
        assert!(log.header.notes[0].contains("test-model"));
    }

    #[test]
    fn assemble_log_clamps_out_of_range_jobs() {
        let mut rng = model_rng(4);
        let jobs = vec![GeneratedJob {
            submit_time: 0,
            run_time: 10_000_000,
            procs: 100_000,
            interactive: false,
        }];
        let common = CommonParams::default();
        let log = assemble_log(&mut rng, "clamp", &common, jobs);
        assert_eq!(log.jobs[0].procs(), Some(common.machine_size));
        assert_eq!(log.jobs[0].run_time, Some(common.max_runtime));
    }

    #[test]
    fn common_params_builder() {
        let p = CommonParams::default().with_machine_size(512);
        assert_eq!(p.machine_size, 512);
    }
}
