//! Feedback: user sessions, think times, and dependency chains.
//!
//! Section 2.2 argues that "the workload on a production machine is ... the result
//! of interleaving the sequences of activities performed by many human beings" and
//! that the instant at which a job is submitted may depend on the termination of a
//! previous job. The SWF standard therefore carries two fields — *preceding job* and
//! *think time* — that make such dependencies explicit.
//!
//! This module provides both directions:
//!
//! * [`infer_dependencies`] implements the paper's "educated guess" methodology: it
//!   identifies sequences of jobs by the same user submitted in rapid succession
//!   after the previous job terminated, and rewrites them as explicit
//!   preceding-job / think-time pairs.
//! * [`SessionModel`] generates closed-loop workloads organized as user sessions
//!   from scratch (think time between dependent jobs, breaks between sessions).
//! * [`dependency_chains`] extracts the chains back out of a log, for analysis and
//!   for the closed-loop simulation driver.

use crate::model::{model_rng, CommonParams, WorkloadModel};
use psbench_swf::{clean, SwfHeader, SwfLog, SwfRecord};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Parameters of the dependency-inference heuristic.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InferenceParams {
    /// A job is considered dependent on the user's previous job if it was submitted
    /// no later than this many seconds after that job terminated.
    pub max_think_time: i64,
    /// Jobs submitted while the user's previous job was still running are treated as
    /// independent (the user clearly did not wait for the result) unless this is true.
    pub chain_overlapping: bool,
}

impl Default for InferenceParams {
    fn default() -> Self {
        InferenceParams {
            max_think_time: 20 * 60,
            chain_overlapping: false,
        }
    }
}

/// Statistics reported by [`infer_dependencies`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct InferenceReport {
    /// Number of jobs that were given a preceding-job dependency.
    pub dependent_jobs: usize,
    /// Number of distinct dependency chains (sessions) found.
    pub chains: usize,
}

/// Insert postulated feedback dependencies into a log, following the methodology of
/// Section 2.2: for each user, a job submitted within `max_think_time` of the
/// termination of that user's previous job depends on it, with the think time set
/// to the actual gap.
pub fn infer_dependencies(log: &mut SwfLog, params: &InferenceParams) -> InferenceReport {
    let mut report = InferenceReport::default();
    // Jobs must be processed in submit order; the log invariant guarantees this.
    // Track, per user, the last job's id, end time, and whether it started a chain.
    struct Last {
        job_id: u64,
        end_time: i64,
        chain_started: bool,
    }
    let mut last_by_user: HashMap<u32, Last> = HashMap::new();
    for j in log.jobs.iter_mut().filter(|j| j.is_summary()) {
        let user = match j.user_id {
            Some(u) => u,
            None => continue,
        };
        // Model-generated workloads have no wait times; assume the job started at
        // submission for the purpose of estimating when its user saw the result.
        let end = j
            .end_time()
            .or_else(|| j.run_time.map(|r| j.submit_time + r));
        if let Some(prev) = last_by_user.get_mut(&user) {
            let gap = j.submit_time - prev.end_time;
            let dependent = if gap >= 0 {
                gap <= params.max_think_time
            } else {
                params.chain_overlapping
            };
            if dependent {
                j.preceding_job = Some(prev.job_id);
                j.think_time = Some(gap.max(0));
                report.dependent_jobs += 1;
                if !prev.chain_started {
                    report.chains += 1;
                    prev.chain_started = true;
                }
            }
        }
        if let Some(e) = end {
            let started = j.preceding_job.is_some()
                && last_by_user
                    .get(&user)
                    .map(|p| p.chain_started)
                    .unwrap_or(false);
            last_by_user.insert(
                user,
                Last {
                    job_id: j.job_id,
                    end_time: e,
                    chain_started: started,
                },
            );
        }
    }
    report
}

/// One dependency chain: job ids in order, each depending on the previous.
pub type Chain = Vec<u64>;

/// Extract the dependency chains of a log (each chain is a maximal path through the
/// preceding-job links). Jobs without dependencies form singleton chains only if
/// some other job depends on them; isolated jobs are not reported.
pub fn dependency_chains(log: &SwfLog) -> Vec<Chain> {
    let mut successor: HashMap<u64, Vec<u64>> = HashMap::new();
    let mut has_predecessor: HashMap<u64, bool> = HashMap::new();
    for j in log.summaries() {
        if let Some(p) = j.preceding_job {
            successor.entry(p).or_default().push(j.job_id);
            has_predecessor.insert(j.job_id, true);
            has_predecessor.entry(p).or_insert(false);
        }
    }
    let mut chains = Vec::new();
    let mut roots: Vec<u64> = has_predecessor
        .iter()
        .filter(|(_, &has)| !has)
        .map(|(&id, _)| id)
        .collect();
    roots.sort_unstable();
    for root in roots {
        // Follow the (first) successor repeatedly; branches start new chains.
        let mut chain = vec![root];
        let mut cur = root;
        while let Some(next) = successor.get(&cur).and_then(|v| v.first()).copied() {
            chain.push(next);
            cur = next;
        }
        chains.push(chain);
    }
    chains
}

/// A closed-loop session workload generator: a fixed population of users each
/// alternates between thinking and submitting the next job of their session; after
/// a session ends the user takes a long break. Because the workload is generated
/// open-loop here (we do not know the schedule yet), the dependency structure is
/// recorded in the SWF feedback fields and the *simulator* realizes the closed loop
/// by releasing dependent jobs only after their predecessors finish.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SessionModel {
    /// Parameters shared by all models.
    pub common: CommonParams,
    /// Number of concurrently active users.
    pub active_users: u32,
    /// Mean number of jobs per session (geometric).
    pub mean_session_length: f64,
    /// Mean think time between dependent jobs, seconds (exponential).
    pub mean_think_time: f64,
    /// Mean break between sessions of the same user, seconds (exponential).
    pub mean_break: f64,
    /// Mean runtime of a job, seconds (exponential).
    pub mean_runtime: f64,
    /// Probability that a job is serial; otherwise a power of two up to the machine size.
    pub p_serial: f64,
}

impl Default for SessionModel {
    fn default() -> Self {
        SessionModel {
            common: CommonParams::default(),
            active_users: 32,
            mean_session_length: 4.0,
            mean_think_time: 300.0,
            mean_break: 4.0 * 3600.0,
            mean_runtime: 1200.0,
            p_serial: 0.3,
        }
    }
}

impl WorkloadModel for SessionModel {
    fn name(&self) -> &'static str {
        "sessions"
    }

    fn machine_size(&self) -> u32 {
        self.common.machine_size
    }

    fn generate(&self, n_jobs: usize, seed: u64) -> SwfLog {
        let mut rng = model_rng(seed);
        let mut records: Vec<SwfRecord> = Vec::with_capacity(n_jobs);
        // Per-user virtual clocks assuming nominal wait times of zero; the simulator
        // will re-derive actual submit times from the dependencies.
        let users = self.active_users.max(1);
        let mut user_clock: Vec<f64> = (0..users)
            .map(|_| crate::dist::exponential(&mut rng, self.mean_break))
            .collect();
        let mut next_id = 1u64;
        while records.len() < n_jobs {
            // The next event belongs to the user with the earliest clock.
            let (u, _) = user_clock
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .unwrap();
            let mut t = user_clock[u];
            // One session of geometrically many jobs, chained by think times.
            let p_end = (1.0 / self.mean_session_length.max(1.0)).clamp(0.05, 1.0);
            let mut prev: Option<(u64, f64)> = None; // (job id, end time)
            loop {
                if records.len() >= n_jobs {
                    break;
                }
                let runtime = crate::dist::exponential(&mut rng, self.mean_runtime)
                    .ceil()
                    .max(1.0);
                let procs = if rng.gen_bool(self.p_serial) {
                    1
                } else {
                    let max_exp = (self.common.machine_size as f64).log2().floor() as u32;
                    1u32 << rng.gen_range(1..=max_exp.max(1))
                };
                let mut rec = SwfRecord::rigid(next_id, t.round() as i64, runtime as i64, procs);
                rec.user_id = Some(u as u32 + 1);
                rec.group_id = Some(1);
                rec.queue_id = Some(1);
                rec.status = psbench_swf::CompletionStatus::Completed;
                rec.requested_time = self.common.estimates.estimate(
                    &mut rng,
                    runtime as i64,
                    Some(self.common.max_runtime),
                );
                if let Some((pid, _)) = prev {
                    let think =
                        crate::dist::exponential(&mut rng, self.mean_think_time).round() as i64;
                    rec.preceding_job = Some(pid);
                    rec.think_time = Some(think);
                }
                let end = t + runtime;
                prev = Some((next_id, end));
                records.push(rec);
                next_id += 1;
                if rng.gen_bool(p_end) {
                    break;
                }
                let think = crate::dist::exponential(&mut rng, self.mean_think_time);
                t = end + think;
            }
            let session_end = prev.map(|(_, e)| e).unwrap_or(t);
            user_clock[u] = session_end + crate::dist::exponential(&mut rng, self.mean_break);
        }
        let mut header = SwfHeader::synthetic(self.name(), self.common.machine_size);
        header.max_runtime = Some(self.common.max_runtime);
        header
            .notes
            .push("Closed-loop session workload: fields 17/18 carry the dependencies".to_string());
        let mut log = SwfLog::new(header, records);
        log.sort_by_submit();
        log.rebase_times();
        log.renumber();
        clean(&mut log);
        log
    }
}

/// Remove all feedback information from a log (turning a closed workload into an
/// open one), for open-versus-closed comparisons (experiment E4).
pub fn strip_dependencies(log: &mut SwfLog) -> usize {
    let mut stripped = 0;
    for j in &mut log.jobs {
        if j.preceding_job.is_some() || j.think_time.is_some() {
            j.preceding_job = None;
            j.think_time = None;
            stripped += 1;
        }
    }
    stripped
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lublin99::Lublin99;
    use psbench_swf::validate;

    #[test]
    fn infer_dependencies_links_rapid_successions() {
        // One user submits three jobs back to back; another submits one far later.
        let mut log = SwfLog::default();
        log.header.max_nodes = Some(16);
        let mk = |id: u64, submit: i64, wait: i64, run: i64, user: u32| {
            let mut r = SwfRecord::rigid(id, submit, run, 1);
            r.wait_time = Some(wait);
            r.user_id = Some(user);
            r.status = psbench_swf::CompletionStatus::Completed;
            r
        };
        log.jobs.push(mk(1, 0, 0, 100, 1)); // ends at 100
        log.jobs.push(mk(2, 150, 0, 100, 1)); // 50s after end -> dependent
        log.jobs.push(mk(3, 200, 0, 100, 2)); // different user -> independent
        log.jobs.push(mk(4, 10_000, 0, 100, 1)); // far later -> independent
        let report = infer_dependencies(&mut log, &InferenceParams::default());
        assert_eq!(report.dependent_jobs, 1);
        assert_eq!(report.chains, 1);
        assert_eq!(log.jobs[1].preceding_job, Some(1));
        assert_eq!(log.jobs[1].think_time, Some(50));
        assert_eq!(log.jobs[2].preceding_job, None);
        assert_eq!(log.jobs[3].preceding_job, None);
        assert!(validate(&log).is_clean());
    }

    #[test]
    fn infer_dependencies_skips_overlapping_submissions_by_default() {
        let mut log = SwfLog::default();
        log.header.max_nodes = Some(16);
        let mut a = SwfRecord::rigid(1, 0, 1000, 1);
        a.wait_time = Some(0);
        a.user_id = Some(1);
        let mut b = SwfRecord::rigid(2, 100, 50, 1);
        b.wait_time = Some(0);
        b.user_id = Some(1);
        log.jobs.push(a);
        log.jobs.push(b);
        let report = infer_dependencies(&mut log, &InferenceParams::default());
        assert_eq!(report.dependent_jobs, 0);
        let report2 = infer_dependencies(
            &mut log,
            &InferenceParams {
                chain_overlapping: true,
                ..InferenceParams::default()
            },
        );
        assert_eq!(report2.dependent_jobs, 1);
        assert_eq!(log.jobs[1].think_time, Some(0));
    }

    #[test]
    fn infer_dependencies_on_model_output_finds_sessions() {
        let mut log = Lublin99::default().generate(3_000, 77);
        let report = infer_dependencies(&mut log, &InferenceParams::default());
        assert!(
            report.dependent_jobs > 100,
            "dependent {}",
            report.dependent_jobs
        );
        assert!(validate(&log).is_clean());
    }

    #[test]
    fn dependency_chains_extraction() {
        let mut log = SwfLog::default();
        let mk = |id: u64, submit: i64| SwfRecord::rigid(id, submit, 10, 1);
        log.jobs.push(mk(1, 0));
        let mut j2 = mk(2, 20);
        j2.preceding_job = Some(1);
        j2.think_time = Some(5);
        log.jobs.push(j2);
        let mut j3 = mk(3, 40);
        j3.preceding_job = Some(2);
        j3.think_time = Some(5);
        log.jobs.push(j3);
        log.jobs.push(mk(4, 50));
        let chains = dependency_chains(&log);
        assert_eq!(chains, vec![vec![1, 2, 3]]);
    }

    #[test]
    fn session_model_generates_valid_closed_workload() {
        let model = SessionModel::default();
        let log = model.generate(1_000, 13);
        assert_eq!(log.len(), 1_000);
        assert!(validate(&log).is_clean());
        let dependent = log
            .summaries()
            .filter(|j| j.preceding_job.is_some())
            .count();
        assert!(dependent > 300, "dependent jobs {dependent}");
        // every dependency points backwards
        for j in log.summaries() {
            if let Some(p) = j.preceding_job {
                assert!(p < j.job_id);
            }
        }
        let chains = dependency_chains(&log);
        assert!(!chains.is_empty());
        assert_eq!(model.name(), "sessions");
        assert_eq!(model.machine_size(), 128);
    }

    #[test]
    fn session_model_deterministic() {
        let a = SessionModel::default().generate(300, 3);
        let b = SessionModel::default().generate(300, 3);
        assert_eq!(a.jobs, b.jobs);
    }

    #[test]
    fn strip_dependencies_removes_all_feedback() {
        let mut log = SessionModel::default().generate(500, 4);
        let n = strip_dependencies(&mut log);
        assert!(n > 0);
        assert!(log
            .jobs
            .iter()
            .all(|j| j.preceding_job.is_none() && j.think_time.is_none()));
        assert_eq!(strip_dependencies(&mut log), 0);
    }
}
