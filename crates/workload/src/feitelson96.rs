//! The Feitelson '96 rigid-job model ("Packing schemes for gang scheduling").
//!
//! The model's salient features, reproduced here:
//!
//! * job sizes follow a hand-tuned discrete distribution that emphasizes small jobs
//!   and powers of two;
//! * runtimes are drawn from a hyper-exponential whose mean grows with job size
//!   (larger jobs run longer), giving the observed positive size–runtime correlation;
//! * jobs are *repeated*: the same (size, runtime) job is resubmitted several times,
//!   modelling users who run the same program again and again;
//! * arrivals form a Poisson process.

use crate::arrival::{ArrivalProcess, PoissonArrivals};
use crate::dist::{hyper_exponential, job_size};
use crate::model::{assemble_log, model_rng, CommonParams, GeneratedJob, WorkloadModel};
use psbench_swf::SwfLog;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Parameters of the Feitelson '96 model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Feitelson96 {
    /// Parameters shared by all models (machine size, users, estimates).
    pub common: CommonParams,
    /// Mean interarrival time in seconds.
    pub mean_interarrival: f64,
    /// Probability that a job is serial.
    pub p_serial: f64,
    /// Probability that a non-serial job size is a power of two.
    pub p_power_of_two: f64,
    /// Base mean runtime (seconds) of a serial job's "short" branch.
    pub base_runtime: f64,
    /// Ratio between the long and short hyper-exponential branches.
    pub long_to_short_ratio: f64,
    /// Probability of the short branch.
    pub p_short: f64,
    /// Exponent with which the mean runtime grows with job size
    /// (`mean ∝ size^exponent`); 0.5 gives a mild positive correlation.
    pub size_runtime_exponent: f64,
    /// Mean number of repetitions of each distinct job (geometric distribution).
    pub mean_repetitions: f64,
}

impl Default for Feitelson96 {
    fn default() -> Self {
        Feitelson96 {
            common: CommonParams::default(),
            mean_interarrival: 900.0,
            p_serial: 0.17,
            p_power_of_two: 0.75,
            base_runtime: 600.0,
            long_to_short_ratio: 20.0,
            p_short: 0.7,
            size_runtime_exponent: 0.5,
            mean_repetitions: 2.5,
        }
    }
}

impl Feitelson96 {
    /// Model with default parameters on a machine of the given size.
    pub fn with_machine_size(machine_size: u32) -> Self {
        Feitelson96 {
            common: CommonParams::default().with_machine_size(machine_size),
            ..Feitelson96::default()
        }
    }

    fn sample_runtime<R: Rng + ?Sized>(&self, rng: &mut R, size: u32) -> i64 {
        let scale = (size as f64).powf(self.size_runtime_exponent);
        let short_mean = self.base_runtime * scale;
        let long_mean = short_mean * self.long_to_short_ratio;
        hyper_exponential(rng, self.p_short, short_mean, long_mean).ceil() as i64
    }

    fn sample_repetitions<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        // Geometric with the requested mean (mean = 1/p).
        let p = (1.0 / self.mean_repetitions.max(1.0)).clamp(0.01, 1.0);
        let mut n = 1usize;
        while !rng.gen_bool(p) && n < 100 {
            n += 1;
        }
        n
    }
}

impl WorkloadModel for Feitelson96 {
    fn name(&self) -> &'static str {
        "feitelson96"
    }

    fn machine_size(&self) -> u32 {
        self.common.machine_size
    }

    fn generate(&self, n_jobs: usize, seed: u64) -> SwfLog {
        let mut rng = model_rng(seed);
        let arrivals = PoissonArrivals::new(self.mean_interarrival).arrivals(&mut rng, n_jobs);
        let mut jobs = Vec::with_capacity(n_jobs);
        let mut i = 0usize;
        while jobs.len() < n_jobs {
            // One "distinct" job, possibly repeated.
            let size = job_size(
                &mut rng,
                self.common.machine_size,
                self.p_serial,
                self.p_power_of_two,
            );
            let runtime = self.sample_runtime(&mut rng, size);
            let reps = self.sample_repetitions(&mut rng);
            for _ in 0..reps {
                if jobs.len() >= n_jobs {
                    break;
                }
                // Repetitions keep size and get a slightly perturbed runtime.
                let jitter: f64 = rng.gen_range(0.85..1.15);
                jobs.push(GeneratedJob {
                    submit_time: arrivals[jobs.len()],
                    run_time: ((runtime as f64) * jitter).ceil() as i64,
                    procs: size,
                    interactive: false,
                });
                i += 1;
            }
        }
        debug_assert_eq!(i, n_jobs);
        assemble_log(&mut rng, self.name(), &self.common, jobs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psbench_metrics::stats::workload_features;
    use psbench_swf::validate;

    #[test]
    fn generates_conforming_log_of_requested_length() {
        let model = Feitelson96::default();
        let log = model.generate(2_000, 11);
        assert_eq!(log.len(), 2_000);
        assert!(validate(&log).is_clean());
        assert_eq!(log.header.max_nodes, Some(128));
    }

    #[test]
    fn sizes_are_small_and_power_of_two_biased() {
        let log = Feitelson96::default().generate(4_000, 5);
        let f = workload_features("f96", &log);
        assert!(
            f.power_of_two_fraction > 0.6,
            "pow2 {}",
            f.power_of_two_fraction
        );
        assert!(f.serial_fraction > 0.08, "serial {}", f.serial_fraction);
        assert!(f.mean_procs < 64.0, "mean size {}", f.mean_procs);
    }

    #[test]
    fn runtime_correlates_with_size() {
        let log = Feitelson96::default().generate(4_000, 7);
        let f = workload_features("f96", &log);
        assert!(
            f.size_runtime_correlation > 0.05,
            "correlation {}",
            f.size_runtime_correlation
        );
    }

    #[test]
    fn repetition_produces_duplicate_size_runs() {
        let log = Feitelson96::default().generate(1_000, 9);
        // Count consecutive jobs with identical size — repetitions should make this
        // noticeably more common than independent sampling would.
        let same_size_pairs = log
            .jobs
            .windows(2)
            .filter(|w| w[0].procs() == w[1].procs())
            .count();
        assert!(
            same_size_pairs > 150,
            "same-size consecutive pairs {same_size_pairs}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let a = Feitelson96::default().generate(300, 42);
        let b = Feitelson96::default().generate(300, 42);
        assert_eq!(a.jobs, b.jobs);
        let c = Feitelson96::default().generate(300, 43);
        assert_ne!(a.jobs, c.jobs);
    }

    #[test]
    fn respects_machine_size() {
        let model = Feitelson96::with_machine_size(32);
        let log = model.generate(500, 3);
        assert!(log.jobs.iter().all(|j| j.procs().unwrap() <= 32));
        assert_eq!(model.machine_size(), 32);
        assert_eq!(model.name(), "feitelson96");
    }
}
