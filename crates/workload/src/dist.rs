//! Random-variate samplers used by the workload models.
//!
//! The published models (Feitelson '96, Jann '97, Downey '97, Lublin '99) are built
//! from a small set of distributions: exponential, Erlang / hyper-Erlang, gamma /
//! hyper-gamma, log-uniform, and a couple of discrete helpers. The `rand` crate's
//! core API only provides uniform sampling, so the variate transformations live
//! here, implemented from first principles and unit-tested against their moments.

use rand::Rng;

/// Sample an exponential variate with the given mean (`mean = 1/rate`).
pub fn exponential<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> f64 {
    assert!(mean > 0.0, "exponential mean must be positive");
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    -mean * u.ln()
}

/// Sample a standard normal variate via the Box–Muller transform.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Sample a normal variate with the given mean and standard deviation.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, std_dev: f64) -> f64 {
    mean + std_dev * standard_normal(rng)
}

/// Sample a gamma variate with shape `alpha > 0` and scale `beta > 0`
/// (mean = `alpha * beta`), using the Marsaglia–Tsang method.
pub fn gamma<R: Rng + ?Sized>(rng: &mut R, alpha: f64, beta: f64) -> f64 {
    assert!(
        alpha > 0.0 && beta > 0.0,
        "gamma parameters must be positive"
    );
    if alpha < 1.0 {
        // Boost: Gamma(alpha) = Gamma(alpha+1) * U^(1/alpha)
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        return gamma(rng, alpha + 1.0, beta) * u.powf(1.0 / alpha);
    }
    let d = alpha - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = standard_normal(rng);
        let v = (1.0 + c * x).powi(3);
        if v <= 0.0 {
            continue;
        }
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        if u < 1.0 - 0.0331 * x.powi(4) || u.ln() < 0.5 * x * x + d * (1.0 - v + v.ln()) {
            return d * v * beta;
        }
    }
}

/// Sample an Erlang variate: the sum of `k` exponentials each with mean
/// `mean_total / k`, so the total mean is `mean_total`.
pub fn erlang<R: Rng + ?Sized>(rng: &mut R, k: u32, mean_total: f64) -> f64 {
    assert!(k > 0, "erlang stage count must be positive");
    let stage_mean = mean_total / k as f64;
    (0..k).map(|_| exponential(rng, stage_mean)).sum()
}

/// A two-branch hyper-exponential: with probability `p` sample an exponential of
/// mean `mean1`, otherwise of mean `mean2`. Produces the high coefficients of
/// variation observed in runtime distributions.
pub fn hyper_exponential<R: Rng + ?Sized>(rng: &mut R, p: f64, mean1: f64, mean2: f64) -> f64 {
    if rng.gen_bool(p.clamp(0.0, 1.0)) {
        exponential(rng, mean1)
    } else {
        exponential(rng, mean2)
    }
}

/// A two-branch hyper-Erlang: with probability `p` an Erlang(`k1`) of mean `mean1`,
/// otherwise an Erlang(`k2`) of mean `mean2` (the Jann et al. building block).
#[allow(clippy::too_many_arguments)]
pub fn hyper_erlang<R: Rng + ?Sized>(
    rng: &mut R,
    p: f64,
    k1: u32,
    mean1: f64,
    k2: u32,
    mean2: f64,
) -> f64 {
    if rng.gen_bool(p.clamp(0.0, 1.0)) {
        erlang(rng, k1, mean1)
    } else {
        erlang(rng, k2, mean2)
    }
}

/// A two-branch hyper-gamma: with probability `p` a Gamma(`a1`, `b1`), otherwise a
/// Gamma(`a2`, `b2`) (the Lublin–Feitelson runtime building block).
pub fn hyper_gamma<R: Rng + ?Sized>(
    rng: &mut R,
    p: f64,
    a1: f64,
    b1: f64,
    a2: f64,
    b2: f64,
) -> f64 {
    if rng.gen_bool(p.clamp(0.0, 1.0)) {
        gamma(rng, a1, b1)
    } else {
        gamma(rng, a2, b2)
    }
}

/// Sample from a log-uniform distribution on `[lo, hi]` (`0 < lo < hi`): the
/// logarithm of the value is uniform. This is Downey's observation about
/// cumulative process lifetimes.
pub fn log_uniform<R: Rng + ?Sized>(rng: &mut R, lo: f64, hi: f64) -> f64 {
    assert!(lo > 0.0 && hi > lo, "log-uniform requires 0 < lo < hi");
    let u: f64 = rng.gen_range(lo.ln()..hi.ln());
    u.exp()
}

/// Sample a job size according to a "power-of-two biased" discrete distribution on
/// `[1, max]`: with probability `p_pow2` the size is a uniformly chosen power of
/// two, otherwise it is a uniformly chosen integer. With probability `p_serial`
/// (checked first) the job is serial.
pub fn job_size<R: Rng + ?Sized>(rng: &mut R, max: u32, p_serial: f64, p_pow2: f64) -> u32 {
    assert!(max >= 1);
    if max == 1 || rng.gen_bool(p_serial.clamp(0.0, 1.0)) {
        return 1;
    }
    if rng.gen_bool(p_pow2.clamp(0.0, 1.0)) {
        let max_exp = (max as f64).log2().floor() as u32;
        let e = rng.gen_range(1..=max_exp);
        1u32 << e
    } else {
        rng.gen_range(2..=max)
    }
}

/// Sample a job size with a log-uniform bias toward small sizes on `[1, max]`, as
/// used by Downey's model (uniform in log2 of the size, then rounded).
pub fn log_uniform_size<R: Rng + ?Sized>(rng: &mut R, max: u32) -> u32 {
    assert!(max >= 1);
    if max == 1 {
        return 1;
    }
    let v = log_uniform(rng, 1.0, max as f64 + 0.999);
    (v.floor() as u32).clamp(1, max)
}

/// Pick an index according to a discrete probability table (weights need not be
/// normalized; all must be non-negative with a positive sum).
pub fn discrete<R: Rng + ?Sized>(rng: &mut R, weights: &[f64]) -> usize {
    let total: f64 = weights.iter().sum();
    assert!(
        total > 0.0 && weights.iter().all(|w| *w >= 0.0),
        "discrete weights must be non-negative with positive sum"
    );
    let mut x = rng.gen_range(0.0..total);
    for (i, w) in weights.iter().enumerate() {
        if x < *w {
            return i;
        }
        x -= w;
    }
    weights.len() - 1
}

/// Round a size up to the next power of two (identity if already a power of two).
pub fn next_power_of_two(n: u32) -> u32 {
    n.next_power_of_two()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    fn mean_of(samples: &[f64]) -> f64 {
        samples.iter().sum::<f64>() / samples.len() as f64
    }

    #[test]
    fn exponential_mean_close() {
        let mut r = rng();
        let samples: Vec<f64> = (0..50_000).map(|_| exponential(&mut r, 20.0)).collect();
        let m = mean_of(&samples);
        assert!((m - 20.0).abs() / 20.0 < 0.05, "mean {m}");
        assert!(samples.iter().all(|&x| x >= 0.0));
    }

    #[test]
    #[should_panic]
    fn exponential_rejects_nonpositive_mean() {
        exponential(&mut rng(), 0.0);
    }

    #[test]
    fn normal_moments_close() {
        let mut r = rng();
        let samples: Vec<f64> = (0..50_000).map(|_| normal(&mut r, 5.0, 2.0)).collect();
        let m = mean_of(&samples);
        let var = samples.iter().map(|x| (x - m).powi(2)).sum::<f64>() / samples.len() as f64;
        assert!((m - 5.0).abs() < 0.1, "mean {m}");
        assert!((var - 4.0).abs() < 0.2, "var {var}");
    }

    #[test]
    fn gamma_mean_close_for_various_shapes() {
        let mut r = rng();
        for &(alpha, beta) in &[(0.5, 2.0), (1.0, 3.0), (4.2, 0.8), (10.0, 1.5)] {
            let samples: Vec<f64> = (0..30_000).map(|_| gamma(&mut r, alpha, beta)).collect();
            let expected = alpha * beta;
            let m = mean_of(&samples);
            assert!(
                (m - expected).abs() / expected < 0.08,
                "alpha={alpha} beta={beta} mean {m} expected {expected}"
            );
            assert!(samples.iter().all(|&x| x >= 0.0));
        }
    }

    #[test]
    fn erlang_mean_and_lower_variance() {
        let mut r = rng();
        let exp_samples: Vec<f64> = (0..20_000).map(|_| exponential(&mut r, 100.0)).collect();
        let erl_samples: Vec<f64> = (0..20_000).map(|_| erlang(&mut r, 4, 100.0)).collect();
        let me = mean_of(&erl_samples);
        assert!((me - 100.0).abs() / 100.0 < 0.05);
        // Erlang(4) has CV 1/2 versus exponential CV 1 at the same mean.
        let var_exp = exp_samples.iter().map(|x| (x - 100.0).powi(2)).sum::<f64>() / 20_000.0;
        let var_erl = erl_samples.iter().map(|x| (x - me).powi(2)).sum::<f64>() / 20_000.0;
        assert!(var_erl < var_exp * 0.5);
    }

    #[test]
    fn hyper_exponential_has_high_cv() {
        let mut r = rng();
        let samples: Vec<f64> = (0..40_000)
            .map(|_| hyper_exponential(&mut r, 0.9, 10.0, 1000.0))
            .collect();
        let m = mean_of(&samples);
        let expected = 0.9 * 10.0 + 0.1 * 1000.0;
        assert!((m - expected).abs() / expected < 0.1, "mean {m}");
        let var = samples.iter().map(|x| (x - m).powi(2)).sum::<f64>() / samples.len() as f64;
        let cv = var.sqrt() / m;
        assert!(cv > 1.5, "cv {cv}");
    }

    #[test]
    fn hyper_erlang_and_hyper_gamma_means() {
        let mut r = rng();
        let he: Vec<f64> = (0..30_000)
            .map(|_| hyper_erlang(&mut r, 0.5, 2, 50.0, 3, 500.0))
            .collect();
        let m = mean_of(&he);
        assert!((m - 275.0).abs() / 275.0 < 0.07, "hyper-erlang mean {m}");

        let hg: Vec<f64> = (0..30_000)
            .map(|_| hyper_gamma(&mut r, 0.3, 2.0, 10.0, 5.0, 100.0))
            .collect();
        let expected = 0.3 * 20.0 + 0.7 * 500.0;
        let m2 = mean_of(&hg);
        assert!(
            (m2 - expected).abs() / expected < 0.07,
            "hyper-gamma mean {m2}"
        );
    }

    #[test]
    fn log_uniform_within_bounds_and_skewed_small() {
        let mut r = rng();
        let samples: Vec<f64> = (0..20_000)
            .map(|_| log_uniform(&mut r, 1.0, 10_000.0))
            .collect();
        assert!(samples.iter().all(|&x| (1.0..=10_000.0).contains(&x)));
        // median should be near geometric mean sqrt(1*10000)=100, far below arithmetic midpoint
        let mut sorted = samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = sorted[sorted.len() / 2];
        assert!(median > 50.0 && median < 200.0, "median {median}");
    }

    #[test]
    fn job_size_respects_bounds_and_biases() {
        let mut r = rng();
        let sizes: Vec<u32> = (0..20_000)
            .map(|_| job_size(&mut r, 128, 0.25, 0.75))
            .collect();
        assert!(sizes.iter().all(|&s| (1..=128).contains(&s)));
        let serial = sizes.iter().filter(|&&s| s == 1).count() as f64 / sizes.len() as f64;
        assert!(serial > 0.2 && serial < 0.35, "serial fraction {serial}");
        let pow2 =
            sizes.iter().filter(|&&s| s.is_power_of_two()).count() as f64 / sizes.len() as f64;
        assert!(pow2 > 0.6, "power-of-two fraction {pow2}");
        // size-1 machine always yields serial jobs
        assert_eq!(job_size(&mut r, 1, 0.0, 0.0), 1);
    }

    #[test]
    fn log_uniform_size_bounds() {
        let mut r = rng();
        let sizes: Vec<u32> = (0..10_000).map(|_| log_uniform_size(&mut r, 64)).collect();
        assert!(sizes.iter().all(|&s| (1..=64).contains(&s)));
        let small = sizes.iter().filter(|&&s| s <= 8).count();
        let large = sizes.iter().filter(|&&s| s > 32).count();
        assert!(small > large, "log-uniform sizes should favour small jobs");
        assert_eq!(log_uniform_size(&mut r, 1), 1);
    }

    #[test]
    fn discrete_matches_weights() {
        let mut r = rng();
        let weights = [1.0, 3.0, 6.0];
        let mut counts = [0usize; 3];
        for _ in 0..30_000 {
            counts[discrete(&mut r, &weights)] += 1;
        }
        let f0 = counts[0] as f64 / 30_000.0;
        let f2 = counts[2] as f64 / 30_000.0;
        assert!((f0 - 0.1).abs() < 0.02);
        assert!((f2 - 0.6).abs() < 0.02);
    }

    #[test]
    #[should_panic]
    fn discrete_rejects_zero_weights() {
        discrete(&mut rng(), &[0.0, 0.0]);
    }

    #[test]
    fn next_power_of_two_helper() {
        assert_eq!(next_power_of_two(1), 1);
        assert_eq!(next_power_of_two(3), 4);
        assert_eq!(next_power_of_two(64), 64);
        assert_eq!(next_power_of_two(65), 128);
    }

    #[test]
    fn deterministic_given_seed() {
        let a: Vec<f64> = {
            let mut r = StdRng::seed_from_u64(7);
            (0..100).map(|_| gamma(&mut r, 2.0, 3.0)).collect()
        };
        let b: Vec<f64> = {
            let mut r = StdRng::seed_from_u64(7);
            (0..100).map(|_| gamma(&mut r, 2.0, 3.0)).collect()
        };
        assert_eq!(a, b);
    }
}
