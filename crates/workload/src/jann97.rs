//! The Jann et al. '97 model ("Modeling of workload in MPPs").
//!
//! Jann et al. fit *hyper-Erlang distributions of common order* to the interarrival
//! times and service times of the CTC SP2 workload, separately for each job-size
//! class (1, 2, 3–4, 5–8, 9–16, ... processors). This module reproduces that
//! structure: a size-class table, and per class a two-branch hyper-Erlang for the
//! interarrival time and one for the runtime. The default parameters are chosen to
//! give the qualitative shape of the published fit (small jobs dominate, large jobs
//! run longer, high runtime variance) rather than the exact SP2 coefficients.

use crate::dist::hyper_erlang;
use crate::model::{assemble_log, model_rng, CommonParams, GeneratedJob, WorkloadModel};
use psbench_swf::SwfLog;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// One size class of the Jann model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SizeClass {
    /// Smallest size in the class (processors).
    pub min_procs: u32,
    /// Largest size in the class (processors).
    pub max_procs: u32,
    /// Relative probability of this class.
    pub weight: f64,
    /// Hyper-Erlang parameters for the runtime of jobs in this class:
    /// `(p, k1, mean1, k2, mean2)`.
    pub runtime: (f64, u32, f64, u32, f64),
    /// Hyper-Erlang parameters for the *extra* interarrival gap contributed by jobs
    /// of this class (the model interleaves the per-class arrival streams).
    pub interarrival: (f64, u32, f64, u32, f64),
}

/// Parameters of the Jann '97 model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Jann97 {
    /// Parameters shared by all models.
    pub common: CommonParams,
    /// The size-class table.
    pub classes: Vec<SizeClass>,
    /// Global scaling of all interarrival times (1.0 = as parameterized). Lowering
    /// this value raises the offered load.
    pub interarrival_scale: f64,
}

fn default_classes(machine_size: u32) -> Vec<SizeClass> {
    // Class boundaries follow the powers-of-two structure of the published model.
    // Weights and means are qualitative: most jobs are small; bigger jobs are rarer
    // and run longer, with high variance (two Erlang branches far apart).
    let mut classes = Vec::new();
    let specs: [(u32, u32, f64, f64); 7] = [
        (1, 1, 0.25, 900.0),
        (2, 2, 0.10, 1200.0),
        (3, 4, 0.15, 1800.0),
        (5, 8, 0.18, 2400.0),
        (9, 16, 0.14, 3600.0),
        (17, 64, 0.12, 5400.0),
        (65, u32::MAX, 0.06, 9000.0),
    ];
    for (lo, hi, weight, mean_rt) in specs {
        if lo > machine_size {
            break;
        }
        let hi = hi.min(machine_size);
        classes.push(SizeClass {
            min_procs: lo,
            max_procs: hi,
            weight,
            runtime: (0.7, 2, mean_rt * 0.4, 1, mean_rt * 2.4),
            interarrival: (0.8, 2, 2400.0, 1, 14_400.0),
        });
    }
    classes
}

impl Default for Jann97 {
    fn default() -> Self {
        let common = CommonParams::default();
        Jann97 {
            classes: default_classes(common.machine_size),
            common,
            interarrival_scale: 1.0,
        }
    }
}

impl Jann97 {
    /// Model with default parameters on a machine of the given size.
    pub fn with_machine_size(machine_size: u32) -> Self {
        let common = CommonParams::default().with_machine_size(machine_size);
        Jann97 {
            classes: default_classes(machine_size),
            common,
            interarrival_scale: 1.0,
        }
    }

    fn pick_class<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let weights: Vec<f64> = self.classes.iter().map(|c| c.weight).collect();
        crate::dist::discrete(rng, &weights)
    }

    fn sample_size<R: Rng + ?Sized>(&self, rng: &mut R, class: &SizeClass) -> u32 {
        if class.min_procs >= class.max_procs {
            return class.min_procs;
        }
        // Sizes within a class favour the class's power-of-two upper boundary.
        if rng.gen_bool(0.6) && class.max_procs.is_power_of_two() {
            class.max_procs
        } else {
            rng.gen_range(class.min_procs..=class.max_procs)
        }
    }
}

impl WorkloadModel for Jann97 {
    fn name(&self) -> &'static str {
        "jann97"
    }

    fn machine_size(&self) -> u32 {
        self.common.machine_size
    }

    fn generate(&self, n_jobs: usize, seed: u64) -> SwfLog {
        assert!(
            !self.classes.is_empty(),
            "Jann97 needs at least one size class"
        );
        let mut rng = model_rng(seed);
        let mut jobs = Vec::with_capacity(n_jobs);
        let mut t = 0.0f64;
        // The per-class streams are interleaved by scaling each class's interarrival
        // by its probability: the aggregate stream then has the right class mix.
        let total_weight: f64 = self.classes.iter().map(|c| c.weight).sum();
        for _ in 0..n_jobs {
            let ci = self.pick_class(&mut rng);
            let class = &self.classes[ci];
            let (p, k1, m1, k2, m2) = class.interarrival;
            let class_gap = hyper_erlang(&mut rng, p, k1, m1, k2, m2);
            // Aggregate gap: the class stream is a fraction weight/total of all jobs.
            let gap = class_gap * (class.weight / total_weight) * self.interarrival_scale;
            t += gap;
            let (p, k1, m1, k2, m2) = class.runtime;
            let runtime = hyper_erlang(&mut rng, p, k1, m1, k2, m2).ceil() as i64;
            jobs.push(GeneratedJob {
                submit_time: t.round() as i64,
                run_time: runtime.max(1),
                procs: self.sample_size(&mut rng, class),
                interactive: false,
            });
        }
        assemble_log(&mut rng, self.name(), &self.common, jobs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psbench_metrics::stats::workload_features;
    use psbench_swf::validate;

    #[test]
    fn generates_conforming_log() {
        let log = Jann97::default().generate(2_000, 21);
        assert_eq!(log.len(), 2_000);
        assert!(validate(&log).is_clean());
    }

    #[test]
    fn class_structure_present() {
        let model = Jann97::default();
        assert!(model.classes.len() >= 5);
        // classes cover 1..=machine_size without gaps
        let mut expected_min = 1;
        for c in &model.classes {
            assert_eq!(c.min_procs, expected_min);
            assert!(c.max_procs >= c.min_procs);
            expected_min = c.max_procs + 1;
        }
    }

    #[test]
    fn larger_jobs_run_longer_on_average() {
        let log = Jann97::default().generate(6_000, 22);
        let mut small = Vec::new();
        let mut large = Vec::new();
        for j in log.summaries() {
            let p = j.procs().unwrap();
            let r = j.run_time.unwrap() as f64;
            if p <= 2 {
                small.push(r);
            } else if p >= 17 {
                large.push(r);
            }
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
        assert!(
            mean(&large) > mean(&small) * 1.5,
            "small {} large {}",
            mean(&small),
            mean(&large)
        );
    }

    #[test]
    fn runtime_variance_is_high() {
        let log = Jann97::default().generate(4_000, 23);
        let f = workload_features("jann", &log);
        assert!(f.runtime_cv > 0.9, "runtime CV {}", f.runtime_cv);
    }

    #[test]
    fn interarrival_scale_changes_load() {
        let base = Jann97::default().generate(1_500, 24);
        let fast = Jann97 {
            interarrival_scale: 0.25,
            ..Jann97::default()
        };
        let compressed = fast.generate(1_500, 24);
        assert!(compressed.duration() < base.duration());
        assert!(compressed.offered_load().unwrap() > base.offered_load().unwrap());
    }

    #[test]
    fn deterministic_given_seed_and_respects_machine() {
        let m = Jann97::with_machine_size(64);
        let a = m.generate(400, 1);
        let b = m.generate(400, 1);
        assert_eq!(a.jobs, b.jobs);
        assert!(a.jobs.iter().all(|j| j.procs().unwrap() <= 64));
        assert_eq!(m.name(), "jann97");
        assert_eq!(m.machine_size(), 64);
    }
}
