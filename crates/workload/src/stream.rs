//! Lazy streaming of model-generated workloads.
//!
//! [`GeneratedStream`] adapts any [`WorkloadModel`] to the
//! [`psbench_swf::source::JobSource`] interface, so synthetic workloads and
//! archived traces are interchangeable inputs to every streaming consumer
//! (profiler, validator, simulator). Generation is **lazy**: nothing is
//! sampled until the first record is requested, and consumers that stop early
//! or only need the metadata pay nothing.
//!
//! Rigid-job models assemble a conforming log (sorted, renumbered, rebased —
//! see [`crate::model::assemble_log`]), which requires the whole job list, so
//! the adapter realizes the model's records internally on first pull and then
//! drains them one at a time. Downstream, the pipeline stays O(chunk): no
//! consumer ever needs to build a second copy as an `SwfLog`.

use crate::model::WorkloadModel;
use psbench_swf::error::ParseError;
use psbench_swf::record::SwfRecord;
use psbench_swf::source::{JobSource, SourceMeta};

/// A [`JobSource`] that lazily generates a workload from a model.
///
/// ```
/// use psbench_swf::JobSource;
/// use psbench_workload::{GeneratedStream, Lublin99, WorkloadModel};
///
/// let model = Lublin99::default();
/// let mut stream = GeneratedStream::new(Box::new(model), 100, 7);
/// let first = stream.next_record().unwrap().unwrap();
/// assert_eq!(first.job_id, 1);
/// // Collecting the stream reproduces `model.generate` exactly.
/// let log = GeneratedStream::new(Box::new(model), 100, 7).collect_log().unwrap();
/// assert_eq!(log, model.generate(100, 7));
/// ```
pub struct GeneratedStream {
    model: Box<dyn WorkloadModel>,
    n_jobs: usize,
    seed: u64,
    meta: SourceMeta,
    records: Option<std::vec::IntoIter<SwfRecord>>,
}

impl GeneratedStream {
    /// Lazily stream `n_jobs` jobs from `model` under the given seed. The
    /// stream's display name defaults to the model's name.
    pub fn new(model: Box<dyn WorkloadModel>, n_jobs: usize, seed: u64) -> Self {
        let meta = SourceMeta::named(model.name());
        GeneratedStream {
            model,
            n_jobs,
            seed,
            meta,
            records: None,
        }
    }

    /// Convenience constructor taking the model by value.
    pub fn of<M: WorkloadModel + 'static>(model: M, n_jobs: usize, seed: u64) -> Self {
        GeneratedStream::new(Box::new(model), n_jobs, seed)
    }

    /// Override the display name carried in the stream's [`SourceMeta`].
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.meta.name = name.into();
        self
    }

    /// True once the model has been realized (the first record was pulled).
    pub fn realized(&self) -> bool {
        self.records.is_some()
    }

    fn realize(&mut self) -> &mut std::vec::IntoIter<SwfRecord> {
        if self.records.is_none() {
            let log = self.model.generate(self.n_jobs, self.seed);
            self.meta.header = log.header;
            self.records = Some(log.jobs.into_iter());
        }
        self.records.as_mut().expect("records realized above")
    }
}

impl JobSource for GeneratedStream {
    fn meta(&self) -> &SourceMeta {
        &self.meta
    }

    fn next_record(&mut self) -> Option<Result<SwfRecord, ParseError>> {
        self.realize().next().map(Ok)
    }
}

impl Iterator for GeneratedStream {
    type Item = Result<SwfRecord, ParseError>;

    fn next(&mut self) -> Option<Self::Item> {
        self.next_record()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lublin99::Lublin99;
    use crate::standard_models;

    #[test]
    fn stream_is_lazy_until_first_pull() {
        let mut s = GeneratedStream::of(Lublin99::with_machine_size(64), 50, 3);
        assert!(!s.realized());
        assert_eq!(s.meta().name, "lublin99");
        s.next_record().unwrap().unwrap();
        assert!(s.realized());
    }

    #[test]
    fn every_standard_model_streams_identically_to_generate() {
        for model in standard_models(64) {
            let expected = model.generate(120, 9);
            let name = model.name();
            let log = GeneratedStream::new(model, 120, 9).collect_log().unwrap();
            assert_eq!(log, expected, "model {name}");
        }
    }

    #[test]
    fn with_name_overrides_the_display_name() {
        let s = GeneratedStream::of(Lublin99::default(), 10, 1).with_name("model:lublin99");
        assert_eq!(s.meta().name, "model:lublin99");
    }

    #[test]
    fn header_is_complete_after_drain() {
        let mut s = GeneratedStream::of(Lublin99::with_machine_size(32), 20, 5);
        while s.next_record().is_some() {}
        assert_eq!(s.meta().header.max_nodes, Some(32));
    }
}
