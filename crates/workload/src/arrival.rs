//! Arrival processes.
//!
//! Workload models separate *when* jobs arrive from *what* they look like. This
//! module provides the arrival processes the models draw on: a plain Poisson
//! process, a daily-cycle modulated process (production logs show a strong
//! day/night pattern), and a two-state MMPP-style bursty process.

use crate::dist::exponential;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Seconds per day, used by the daily cycle.
pub const SECONDS_PER_DAY: i64 = 86_400;

/// An arrival process produces a monotonically non-decreasing sequence of arrival
/// times (seconds from the start of the workload).
pub trait ArrivalProcess {
    /// Generate `n` arrival times starting at time 0.
    fn arrivals<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> Vec<i64>;
}

/// A homogeneous Poisson process with the given mean interarrival time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PoissonArrivals {
    /// Mean interarrival time in seconds.
    pub mean_interarrival: f64,
}

impl PoissonArrivals {
    /// Create a Poisson arrival process with the given mean interarrival time.
    pub fn new(mean_interarrival: f64) -> Self {
        assert!(mean_interarrival > 0.0);
        PoissonArrivals { mean_interarrival }
    }
}

impl ArrivalProcess for PoissonArrivals {
    fn arrivals<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> Vec<i64> {
        let mut t = 0.0f64;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            t += exponential(rng, self.mean_interarrival);
            out.push(t.round() as i64);
        }
        out
    }
}

/// A daily-cycle modulated Poisson process: the instantaneous arrival rate follows
/// a 24-hour profile with a configurable peak-to-trough ratio, peaking in the
/// afternoon as production logs show.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DailyCycleArrivals {
    /// Mean interarrival time in seconds, averaged over the whole day.
    pub mean_interarrival: f64,
    /// Ratio between the peak (working hours) rate and the trough (night) rate.
    pub peak_to_trough: f64,
    /// Hour of the day (0–23) at which the rate peaks.
    pub peak_hour: u32,
}

impl Default for DailyCycleArrivals {
    fn default() -> Self {
        DailyCycleArrivals {
            mean_interarrival: 900.0,
            peak_to_trough: 4.0,
            peak_hour: 15,
        }
    }
}

impl DailyCycleArrivals {
    /// Relative rate multiplier at a given time of day, averaging 1 over the day.
    pub fn rate_multiplier(&self, t: i64) -> f64 {
        let seconds_of_day = t.rem_euclid(SECONDS_PER_DAY) as f64;
        let hour = seconds_of_day / 3600.0;
        // Sinusoidal profile between trough and peak, normalized to mean 1.
        let ratio = self.peak_to_trough.max(1.0);
        let amplitude = (ratio - 1.0) / (ratio + 1.0);
        let phase = (hour - self.peak_hour as f64) / 24.0 * 2.0 * std::f64::consts::PI;
        1.0 + amplitude * phase.cos()
    }
}

impl ArrivalProcess for DailyCycleArrivals {
    fn arrivals<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> Vec<i64> {
        // Thinning-free approach: draw an exponential with the *local* mean at the
        // current time. This is an approximation of an inhomogeneous Poisson process
        // that is adequate for workload generation and keeps the generator O(n).
        let mut t = 0.0f64;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let mult = self.rate_multiplier(t.round() as i64);
            let local_mean = self.mean_interarrival / mult;
            t += exponential(rng, local_mean);
            out.push(t.round() as i64);
        }
        out
    }
}

/// A two-state Markov-modulated Poisson process: a "calm" state and a "bursty"
/// state with a much shorter interarrival time; the process switches state after
/// exponentially distributed sojourn times. Produces the arrival burstiness that a
/// plain Poisson process lacks.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BurstyArrivals {
    /// Mean interarrival time in the calm state, seconds.
    pub calm_interarrival: f64,
    /// Mean interarrival time in the bursty state, seconds.
    pub burst_interarrival: f64,
    /// Mean sojourn time in the calm state, seconds.
    pub calm_duration: f64,
    /// Mean sojourn time in the bursty state, seconds.
    pub burst_duration: f64,
}

impl Default for BurstyArrivals {
    fn default() -> Self {
        BurstyArrivals {
            calm_interarrival: 1800.0,
            burst_interarrival: 120.0,
            calm_duration: 4.0 * 3600.0,
            burst_duration: 1800.0,
        }
    }
}

impl ArrivalProcess for BurstyArrivals {
    fn arrivals<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> Vec<i64> {
        let mut t = 0.0f64;
        let mut out = Vec::with_capacity(n);
        let mut bursty = false;
        let mut state_ends = exponential(rng, self.calm_duration);
        for _ in 0..n {
            let mean = if bursty {
                self.burst_interarrival
            } else {
                self.calm_interarrival
            };
            t += exponential(rng, mean);
            while t > state_ends {
                bursty = !bursty;
                let dur = if bursty {
                    self.burst_duration
                } else {
                    self.calm_duration
                };
                state_ends += exponential(rng, dur);
            }
            out.push(t.round() as i64);
        }
        out
    }
}

/// Scale a list of arrival times so that a workload of total work `work_area`
/// (processor-seconds) offers the target load on a machine of `machine_size`
/// processors. Returns the scaled arrival times (the first arrival is preserved).
pub fn scale_to_load(
    arrivals: &[i64],
    work_area: f64,
    machine_size: u32,
    target_load: f64,
) -> Vec<i64> {
    assert!(target_load > 0.0 && machine_size > 0);
    if arrivals.len() < 2 {
        return arrivals.to_vec();
    }
    let first = arrivals[0];
    let last = *arrivals.last().unwrap();
    let span = (last - first).max(1) as f64;
    let current_load = work_area / (span * machine_size as f64);
    let factor = current_load / target_load;
    arrivals
        .iter()
        .map(|&a| first + (((a - first) as f64) * factor).round() as i64)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(123)
    }

    fn mean_interarrival(arrivals: &[i64]) -> f64 {
        arrivals
            .windows(2)
            .map(|w| (w[1] - w[0]) as f64)
            .sum::<f64>()
            / (arrivals.len() - 1) as f64
    }

    #[test]
    fn poisson_arrivals_sorted_with_right_mean() {
        let p = PoissonArrivals::new(600.0);
        let arrivals = p.arrivals(&mut rng(), 20_000);
        assert!(arrivals.windows(2).all(|w| w[0] <= w[1]));
        let m = mean_interarrival(&arrivals);
        assert!((m - 600.0).abs() / 600.0 < 0.05, "mean interarrival {m}");
    }

    #[test]
    #[should_panic]
    fn poisson_rejects_nonpositive_mean() {
        PoissonArrivals::new(0.0);
    }

    #[test]
    fn daily_cycle_rate_peaks_at_peak_hour() {
        let d = DailyCycleArrivals::default();
        let peak = d.rate_multiplier(d.peak_hour as i64 * 3600);
        let trough = d.rate_multiplier(((d.peak_hour + 12) % 24) as i64 * 3600);
        assert!(peak > trough);
        assert!((peak / trough - d.peak_to_trough).abs() < 0.3);
        // mean multiplier over the day is ~1
        let avg: f64 = (0..24).map(|h| d.rate_multiplier(h * 3600)).sum::<f64>() / 24.0;
        assert!((avg - 1.0).abs() < 0.05, "avg {avg}");
    }

    #[test]
    fn daily_cycle_concentrates_arrivals_in_working_hours() {
        let d = DailyCycleArrivals {
            mean_interarrival: 300.0,
            peak_to_trough: 6.0,
            peak_hour: 14,
        };
        let arrivals = d.arrivals(&mut rng(), 40_000);
        assert!(arrivals.windows(2).all(|w| w[0] <= w[1]));
        let day_count = arrivals
            .iter()
            .filter(|&&a| {
                let h = (a.rem_euclid(SECONDS_PER_DAY)) / 3600;
                (9..=19).contains(&h)
            })
            .count() as f64;
        let frac = day_count / arrivals.len() as f64;
        // 11 of 24 hours would hold ~46% under a uniform process; the cycle pushes it up.
        assert!(frac > 0.55, "working-hours fraction {frac}");
    }

    #[test]
    fn bursty_arrivals_have_higher_cv_than_poisson() {
        let n = 30_000;
        let poisson = PoissonArrivals::new(600.0).arrivals(&mut rng(), n);
        let bursty = BurstyArrivals {
            calm_interarrival: 1100.0,
            burst_interarrival: 60.0,
            calm_duration: 6.0 * 3600.0,
            burst_duration: 3600.0,
        }
        .arrivals(&mut rng(), n);
        let cv = |arr: &[i64]| {
            let gaps: Vec<f64> = arr.windows(2).map(|w| (w[1] - w[0]) as f64).collect();
            let m = gaps.iter().sum::<f64>() / gaps.len() as f64;
            let v = gaps.iter().map(|g| (g - m).powi(2)).sum::<f64>() / gaps.len() as f64;
            v.sqrt() / m
        };
        assert!(cv(&bursty) > cv(&poisson) * 1.2);
        assert!(bursty.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn scale_to_load_hits_target() {
        let p = PoissonArrivals::new(600.0);
        let arrivals = p.arrivals(&mut rng(), 5_000);
        // Suppose each job is 32 procs x 1000 s.
        let work = 5_000.0 * 32.0 * 1000.0;
        let scaled = scale_to_load(&arrivals, work, 128, 0.8);
        let span = (*scaled.last().unwrap() - scaled[0]) as f64;
        let load = work / (span * 128.0);
        assert!((load - 0.8).abs() < 0.05, "achieved load {load}");
        assert!(scaled.windows(2).all(|w| w[0] <= w[1]));
        // degenerate inputs
        assert_eq!(scale_to_load(&[5], 100.0, 10, 0.5), vec![5]);
    }
}
