//! The Lublin '99 model (Lublin & Feitelson, "A workload model for parallel
//! computer systems").
//!
//! The paper singles this model out: "a statistical analysis shows that the one
//! proposed by Lublin is relatively representative of multiple workloads". Its
//! structure, reproduced here:
//!
//! * two job populations — interactive and batch — with different runtimes and
//!   arrival behaviour;
//! * job sizes: a probability of serial jobs, a strong preference for powers of two,
//!   and a two-stage (log-)uniform distribution over the exponent;
//! * runtimes: a hyper-gamma distribution whose mixing probability depends on the
//!   job size, producing the size–runtime correlation;
//! * arrivals: gamma-distributed interarrival gaps modulated by a daily cycle.
//!
//! The default constants are qualitative approximations of the published fit, chosen
//! to reproduce its shape (serial fraction ≈ a quarter, power-of-two fraction ≈
//! three quarters, high runtime CV, pronounced daily cycle) rather than its exact
//! coefficients; every constant is a public field so studies can refit them.

use crate::arrival::DailyCycleArrivals;
use crate::dist::{gamma, hyper_gamma};
use crate::model::{assemble_log, model_rng, CommonParams, GeneratedJob, WorkloadModel};
use psbench_swf::SwfLog;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Parameters of one job population (interactive or batch).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Population {
    /// Fraction of all jobs belonging to this population.
    pub fraction: f64,
    /// Probability of a serial job.
    pub p_serial: f64,
    /// Probability that a parallel job's size is a power of two.
    pub p_power_of_two: f64,
    /// Mean of the uniform distribution over log2(size) for parallel jobs.
    pub size_log2_mean: f64,
    /// Half-width of the uniform distribution over log2(size).
    pub size_log2_halfwidth: f64,
    /// Hyper-gamma runtime: shape of the "short" branch.
    pub runtime_shape_short: f64,
    /// Hyper-gamma runtime: scale of the "short" branch (seconds).
    pub runtime_scale_short: f64,
    /// Hyper-gamma runtime: shape of the "long" branch.
    pub runtime_shape_long: f64,
    /// Hyper-gamma runtime: scale of the "long" branch (seconds).
    pub runtime_scale_long: f64,
    /// Probability of the short branch for a serial job; the probability shifts
    /// toward the long branch as the size grows.
    pub p_short_serial: f64,
    /// How much the short-branch probability decreases per doubling of the size.
    pub p_short_slope: f64,
    /// Mean interarrival time of this population, seconds (before the daily cycle).
    pub mean_interarrival: f64,
    /// Shape of the gamma interarrival distribution (1 = exponential; < 1 burstier).
    pub interarrival_shape: f64,
}

/// Parameters of the Lublin '99 model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Lublin99 {
    /// Parameters shared by all models.
    pub common: CommonParams,
    /// The interactive population.
    pub interactive: Population,
    /// The batch population.
    pub batch: Population,
    /// Peak-to-trough ratio of the daily arrival cycle.
    pub daily_peak_to_trough: f64,
    /// Hour of day at which arrivals peak.
    pub daily_peak_hour: u32,
}

impl Default for Lublin99 {
    fn default() -> Self {
        Lublin99 {
            common: CommonParams::default(),
            interactive: Population {
                fraction: 0.35,
                p_serial: 0.4,
                p_power_of_two: 0.7,
                size_log2_mean: 1.5,
                size_log2_halfwidth: 1.5,
                runtime_shape_short: 2.0,
                runtime_scale_short: 30.0,
                runtime_shape_long: 2.0,
                runtime_scale_long: 600.0,
                p_short_serial: 0.85,
                p_short_slope: 0.05,
                mean_interarrival: 600.0,
                interarrival_shape: 0.7,
            },
            batch: Population {
                fraction: 0.65,
                p_serial: 0.2,
                p_power_of_two: 0.8,
                size_log2_mean: 3.5,
                size_log2_halfwidth: 2.5,
                runtime_shape_short: 2.5,
                runtime_scale_short: 900.0,
                runtime_shape_long: 2.0,
                runtime_scale_long: 12_000.0,
                p_short_serial: 0.7,
                p_short_slope: 0.06,
                mean_interarrival: 1100.0,
                interarrival_shape: 0.8,
            },
            daily_peak_to_trough: 4.0,
            daily_peak_hour: 14,
        }
    }
}

impl Lublin99 {
    /// Model with default parameters on a machine of the given size.
    pub fn with_machine_size(machine_size: u32) -> Self {
        Lublin99 {
            common: CommonParams::default().with_machine_size(machine_size),
            ..Lublin99::default()
        }
    }

    fn sample_size<R: Rng + ?Sized>(&self, rng: &mut R, pop: &Population) -> u32 {
        let max = self.common.machine_size;
        if max == 1 || rng.gen_bool(pop.p_serial.clamp(0.0, 1.0)) {
            return 1;
        }
        let max_log2 = (max as f64).log2();
        let lo = (pop.size_log2_mean - pop.size_log2_halfwidth).max(0.5);
        let hi = (pop.size_log2_mean + pop.size_log2_halfwidth).min(max_log2);
        let e: f64 = if hi > lo { rng.gen_range(lo..hi) } else { lo };
        let size = if rng.gen_bool(pop.p_power_of_two.clamp(0.0, 1.0)) {
            1u32 << (e.round() as u32).min(max_log2.floor() as u32)
        } else {
            (2f64.powf(e).round() as u32).max(2)
        };
        size.clamp(2, max)
    }

    fn sample_runtime<R: Rng + ?Sized>(&self, rng: &mut R, pop: &Population, size: u32) -> i64 {
        // The probability of the short branch decreases with log2(size): bigger jobs
        // are more likely to be long, giving the size–runtime correlation.
        let p_short =
            (pop.p_short_serial - pop.p_short_slope * (size as f64).log2()).clamp(0.05, 0.95);
        let rt = hyper_gamma(
            rng,
            p_short,
            pop.runtime_shape_short,
            pop.runtime_scale_short,
            pop.runtime_shape_long,
            pop.runtime_scale_long,
        );
        rt.ceil().max(1.0) as i64
    }
}

impl WorkloadModel for Lublin99 {
    fn name(&self) -> &'static str {
        "lublin99"
    }

    fn machine_size(&self) -> u32 {
        self.common.machine_size
    }

    fn generate(&self, n_jobs: usize, seed: u64) -> SwfLog {
        let mut rng = model_rng(seed);
        let cycle = DailyCycleArrivals {
            mean_interarrival: 1.0, // multiplier only; per-population means applied below
            peak_to_trough: self.daily_peak_to_trough,
            peak_hour: self.daily_peak_hour,
        };
        let mut jobs = Vec::with_capacity(n_jobs);
        // Two independent arrival streams, merged by always advancing the earlier one.
        let mut t_inter = 0.0f64;
        let mut t_batch = 0.0f64;
        let frac_inter = self.interactive.fraction
            / (self.interactive.fraction + self.batch.fraction).max(f64::EPSILON);
        while jobs.len() < n_jobs {
            let interactive = rng.gen_bool(frac_inter);
            let pop = if interactive {
                &self.interactive
            } else {
                &self.batch
            };
            let t = if interactive {
                &mut t_inter
            } else {
                &mut t_batch
            };
            // Gamma interarrival with the population's shape, scaled by the daily cycle
            // at the current time of day.
            let mult = cycle.rate_multiplier(t.round() as i64).max(0.1);
            let mean = pop.mean_interarrival / mult;
            let shape = pop.interarrival_shape.max(0.05);
            let gap = gamma(&mut rng, shape, mean / shape);
            *t += gap;
            let submit = t.round() as i64;
            let size = self.sample_size(&mut rng, pop);
            let runtime = self.sample_runtime(&mut rng, pop, size);
            jobs.push(GeneratedJob {
                submit_time: submit,
                run_time: runtime,
                procs: size,
                interactive,
            });
        }
        assemble_log(&mut rng, self.name(), &self.common, jobs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrival::SECONDS_PER_DAY;
    use psbench_metrics::stats::workload_features;
    use psbench_swf::validate;

    #[test]
    fn generates_conforming_log() {
        let log = Lublin99::default().generate(3_000, 41);
        assert_eq!(log.len(), 3_000);
        assert!(validate(&log).is_clean());
    }

    #[test]
    fn size_distribution_shape() {
        let log = Lublin99::default().generate(6_000, 42);
        let f = workload_features("lublin", &log);
        assert!(
            f.serial_fraction > 0.15 && f.serial_fraction < 0.45,
            "serial {}",
            f.serial_fraction
        );
        assert!(
            f.power_of_two_fraction > 0.6,
            "pow2 {}",
            f.power_of_two_fraction
        );
        assert!(
            f.mean_procs > 2.0 && f.mean_procs < 64.0,
            "mean procs {}",
            f.mean_procs
        );
    }

    #[test]
    fn runtime_distribution_shape() {
        let log = Lublin99::default().generate(6_000, 43);
        let f = workload_features("lublin", &log);
        assert!(f.runtime_cv > 1.0, "runtime CV {}", f.runtime_cv);
        assert!(
            f.size_runtime_correlation > 0.0,
            "corr {}",
            f.size_runtime_correlation
        );
    }

    #[test]
    fn interactive_jobs_are_shorter() {
        let log = Lublin99::default().generate(6_000, 44);
        let mean_rt = |q: u32| {
            let v: Vec<f64> = log
                .summaries()
                .filter(|j| j.queue_id == Some(q))
                .map(|j| j.run_time.unwrap() as f64)
                .collect();
            v.iter().sum::<f64>() / v.len().max(1) as f64
        };
        let interactive = mean_rt(0);
        let batch = mean_rt(1);
        assert!(
            batch > interactive * 3.0,
            "interactive {interactive} batch {batch}"
        );
        // both populations are present
        assert!(log.summaries().any(|j| j.queue_id == Some(0)));
        assert!(log.summaries().any(|j| j.queue_id == Some(1)));
    }

    #[test]
    fn arrivals_follow_daily_cycle() {
        let log = Lublin99::default().generate(8_000, 45);
        let day: usize = log
            .summaries()
            .filter(|j| {
                let h = (j.submit_time.rem_euclid(SECONDS_PER_DAY)) / 3600;
                (9..=19).contains(&h)
            })
            .count();
        let frac = day as f64 / log.len() as f64;
        assert!(frac > 0.52, "working-hours fraction {frac}");
    }

    #[test]
    fn deterministic_and_respects_machine_size() {
        let m = Lublin99::with_machine_size(64);
        let a = m.generate(500, 5);
        let b = m.generate(500, 5);
        assert_eq!(a.jobs, b.jobs);
        assert!(a.jobs.iter().all(|j| j.procs().unwrap() <= 64));
        assert_eq!(m.name(), "lublin99");
        assert_eq!(m.machine_size(), 64);
    }
}
