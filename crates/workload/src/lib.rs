//! # psbench-workload — workload models for parallel job scheduler evaluation
//!
//! Section 2 of the paper surveys the state of the art in workload modelling for
//! parallel systems and argues for standard, representative workloads. This crate
//! implements the models the paper cites, all emitting conforming SWF logs:
//!
//! * [`feitelson96`] — the Feitelson '96 rigid model (small / power-of-two jobs,
//!   repeated runs, size–runtime correlation).
//! * [`jann97`] — the Jann et al. '97 hyper-Erlang-per-size-class model.
//! * [`downey97`] — the Downey '97 log-uniform model (and speedup profiles).
//! * [`lublin99`] — the Lublin '99 model the paper singles out as most representative.
//! * [`flexible`] — moldable/malleable jobs (Downey and Sevcik speedup functions)
//!   and the internal-structure strawman (processes, barriers, granularity, variance).
//! * [`feedback`] — user sessions, think times, dependency inference and closed-loop
//!   session workloads (SWF fields 17/18).
//! * [`rawlog`] — synthetic raw accounting-log dialects for the conversion pipeline.
//! * [`outagegen`] — synthetic failure / maintenance logs in the standard outage format.
//! * [`arrival`] / [`dist`] — arrival processes and random-variate samplers.
//! * [`model`] — the common [`model::WorkloadModel`] interface and log assembly.
//! * [`stream`] — [`stream::GeneratedStream`], the lazy `JobSource` adapter that
//!   makes every model interchangeable with archived traces in the streaming
//!   evaluation pipeline.

#![warn(missing_docs)]

pub mod arrival;
pub mod dist;
pub mod downey97;
pub mod feedback;
pub mod feitelson96;
pub mod flexible;
pub mod jann97;
pub mod lublin99;
pub mod model;
pub mod outagegen;
pub mod rawlog;
pub mod stream;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use crate::arrival::{
        ArrivalProcess, BurstyArrivals, DailyCycleArrivals, PoissonArrivals, SECONDS_PER_DAY,
    };
    pub use crate::downey97::Downey97;
    pub use crate::feedback::{
        dependency_chains, infer_dependencies, strip_dependencies, InferenceParams,
        InferenceReport, SessionModel,
    };
    pub use crate::feitelson96::Feitelson96;
    pub use crate::flexible::{
        sample_internal_structure, DowneySpeedup, InternalStructure, MoldableJob, SevcikSpeedup,
        SpeedupModel,
    };
    pub use crate::jann97::Jann97;
    pub use crate::lublin99::Lublin99;
    pub use crate::model::{
        assemble_log, model_rng, CommonParams, EstimateModel, GeneratedJob, WorkloadModel,
    };
    pub use crate::outagegen::OutageGenerator;
    pub use crate::rawlog::{emit_raw, generate_raw_log, RawLogProfile};
    pub use crate::stream::GeneratedStream;
}

pub use prelude::*;

/// All four rigid-job models with default parameters on a machine of the given
/// size, for experiments that sweep over models (E3, E8).
pub fn standard_models(machine_size: u32) -> Vec<Box<dyn model::WorkloadModel>> {
    vec![
        Box::new(feitelson96::Feitelson96::with_machine_size(machine_size)),
        Box::new(jann97::Jann97::with_machine_size(machine_size)),
        Box::new(downey97::Downey97::with_machine_size(machine_size)),
        Box::new(lublin99::Lublin99::with_machine_size(machine_size)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use psbench_swf::validate;

    #[test]
    fn standard_models_all_generate_valid_logs() {
        let models = standard_models(64);
        assert_eq!(models.len(), 4);
        let mut names = Vec::new();
        for m in &models {
            let log = m.generate(200, 99);
            assert_eq!(log.len(), 200, "model {}", m.name());
            assert!(validate(&log).is_clean(), "model {}", m.name());
            assert_eq!(m.machine_size(), 64);
            names.push(m.name());
        }
        names.sort_unstable();
        assert_eq!(names, vec!["downey97", "feitelson96", "jann97", "lublin99"]);
    }
}
