//! Synthetic raw accounting logs in the dialects of the machines the paper cites.
//!
//! We do not ship the Parallel Workloads Archive traces; instead this module emits
//! *raw-format* text logs (NASA iPSC/860-, SDSC Paragon-, CTC SP2-, and LANL
//! CM-5-style) from an underlying synthetic workload, so the SWF conversion pipeline
//! of [`mod@psbench_swf::convert`] can be exercised and benchmarked end to end
//! (experiment E6). The emitted dialects match what the converters expect.

use crate::lublin99::Lublin99;
use crate::model::WorkloadModel;
use psbench_swf::convert::Dialect;
use psbench_swf::SwfLog;
use serde::{Deserialize, Serialize};

/// Machine profile used when emitting a raw log: the machine size and a base epoch
/// so timestamps look like real Unix times.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RawLogProfile {
    /// The dialect to emit.
    pub dialect: Dialect,
    /// Machine size in processors.
    pub machine_size: u32,
    /// Unix epoch (seconds) of the first job submission.
    pub base_epoch: i64,
}

impl RawLogProfile {
    /// The historical machine size of the system each dialect mimics.
    pub fn canonical(dialect: Dialect) -> Self {
        let (machine_size, base_epoch) = match dialect {
            Dialect::NasaIpsc => (128, 749_400_000), // iPSC/860, late 1993
            Dialect::SdscParagon => (416, 757_400_000), // Paragon, 1994
            Dialect::CtcSp2 => (430, 835_000_000),   // SP2, 1996
            Dialect::LanlCm5 => (1024, 749_000_000), // CM-5, 1994
        };
        RawLogProfile {
            dialect,
            machine_size,
            base_epoch,
        }
    }
}

fn user_name(dialect: Dialect, id: u32) -> String {
    match dialect {
        Dialect::NasaIpsc => format!("user{id:03}"),
        Dialect::SdscParagon => format!("u{id}"),
        Dialect::CtcSp2 => format!("ctc{id:04}"),
        Dialect::LanlCm5 => format!("u_{id}"),
    }
}

fn exe_name(id: u32) -> String {
    const NAMES: [&str; 8] = [
        "cfd_solver",
        "qcd_lattice",
        "climate",
        "nbody",
        "render",
        "fft_bench",
        "md_sim",
        "ocean",
    ];
    format!("{}_{id}", NAMES[(id as usize - 1) % NAMES.len()])
}

/// Emit a raw accounting-log text for the given profile from an SWF workload.
///
/// Only summary records with known wait time, runtime and processor count are
/// emitted (raw logs record what actually ran).
pub fn emit_raw(log: &SwfLog, profile: &RawLogProfile) -> String {
    let mut out = String::new();
    match profile.dialect {
        Dialect::NasaIpsc => out.push_str("# jobid user exe nodes submit start runtime status\n"),
        Dialect::SdscParagon => out.push_str(
            "# jobid|user|group|queue|partition|submit|start|end|nodes|cpu_secs|mem_kb|status\n",
        ),
        Dialect::CtcSp2 => out.push_str("# LoadLeveler-style accounting records\n"),
        Dialect::LanlCm5 => out.push_str(
            "# jobid,user,group,exe,partition_size,submit,start,end,avg_cpu,mem_kb,outcome\n",
        ),
    }
    let mut emitted = 0u64;
    for j in log.summaries() {
        let (wait, run, procs) = match (j.wait_time, j.run_time, j.procs()) {
            (Some(w), Some(r), Some(p)) => (w, r, p),
            _ => continue,
        };
        emitted += 1;
        let submit = profile.base_epoch + j.submit_time;
        let start = submit + wait;
        let end = start + run;
        let user = j.user_id.unwrap_or(1);
        let group = j.group_id.unwrap_or(1);
        let exe = j.executable_id.unwrap_or(1);
        let ok = j.status.is_successful() || j.status == psbench_swf::CompletionStatus::Unknown;
        let cpu = j.avg_cpu_time.unwrap_or((run as f64 * 0.92) as i64);
        let mem = j.used_memory_kb.unwrap_or(procs as i64 * 2048);
        match profile.dialect {
            Dialect::NasaIpsc => {
                out.push_str(&format!(
                    "{} {} {} {} {} {} {} {}\n",
                    emitted,
                    user_name(profile.dialect, user),
                    exe_name(exe),
                    procs,
                    submit,
                    start,
                    run,
                    if ok { "ok" } else { "failed" }
                ));
            }
            Dialect::SdscParagon => {
                let queue = if j.queue_id == Some(0) {
                    "interactive"
                } else {
                    "batch"
                };
                out.push_str(&format!(
                    "{}|{}|g{}|{}|main|{}|{}|{}|{}|{}|{}|{}\n",
                    emitted,
                    user_name(profile.dialect, user),
                    group,
                    queue,
                    submit,
                    start,
                    end,
                    procs,
                    cpu,
                    mem,
                    if ok { "C" } else { "F" }
                ));
            }
            Dialect::CtcSp2 => {
                let class = if j.queue_id == Some(0) {
                    "interactive"
                } else {
                    "batch"
                };
                let req = j.requested_time.unwrap_or(run * 2);
                out.push_str(&format!(
                    "job={} user={} group=g{} class={} submit={} start={} end={} procs={} req_procs={} wall_req={} mem_used={} cpu={} exe={} completion={}\n",
                    emitted,
                    user_name(profile.dialect, user),
                    group,
                    class,
                    submit,
                    start,
                    end,
                    procs,
                    j.requested_procs.unwrap_or(procs),
                    req,
                    mem,
                    cpu,
                    exe_name(exe),
                    if ok { "ok" } else { "removed" }
                ));
            }
            Dialect::LanlCm5 => {
                // The CM-5 only ran jobs in power-of-two partitions of at least 32 nodes.
                let psize = procs.next_power_of_two().max(32).min(profile.machine_size);
                out.push_str(&format!(
                    "{},{},grp{},{},{},{},{},{},{},{},{}\n",
                    emitted,
                    user_name(profile.dialect, user),
                    group,
                    exe_name(exe),
                    psize,
                    submit,
                    start,
                    end,
                    cpu,
                    mem,
                    if ok { "success" } else { "failure" }
                ));
            }
        }
    }
    out
}

/// Generate a synthetic raw log directly: an underlying Lublin'99 workload sized to
/// the profile's machine, emitted in the profile's dialect. This is the input
/// fixture of experiment E6.
pub fn generate_raw_log(profile: &RawLogProfile, n_jobs: usize, seed: u64) -> String {
    let model = Lublin99::with_machine_size(profile.machine_size);
    // Simulate plausible wait times so the raw log has realistic start/end stamps:
    // the model leaves wait unknown, so fill a small synthetic queueing delay.
    let mut log = model.generate(n_jobs, seed);
    let mut rng = crate::model::model_rng(seed ^ 0x9e37_79b9);
    for j in &mut log.jobs {
        if j.wait_time.is_none() {
            let w = crate::dist::exponential(&mut rng, 300.0).round() as i64;
            j.wait_time = Some(w);
        }
    }
    emit_raw(&log, profile)
}

#[cfg(test)]
mod tests {
    use super::*;
    use psbench_swf::convert::{convert, ConvertOptions};
    use psbench_swf::validate;

    #[test]
    fn canonical_profiles_cover_all_dialects() {
        for &d in Dialect::all() {
            let p = RawLogProfile::canonical(d);
            assert!(p.machine_size >= 128);
            assert!(p.base_epoch > 0);
            assert_eq!(p.dialect, d);
        }
    }

    #[test]
    fn every_dialect_round_trips_through_the_converter() {
        for &d in Dialect::all() {
            let profile = RawLogProfile::canonical(d);
            let raw = generate_raw_log(&profile, 300, 7);
            assert!(!raw.is_empty());
            let conv = convert(
                &raw,
                d,
                Some(profile.machine_size),
                &ConvertOptions::default(),
            )
            .unwrap_or_else(|e| panic!("dialect {d:?}: {e}"));
            assert_eq!(conv.skipped, 0, "dialect {d:?} skipped lines");
            assert_eq!(conv.log.len(), 300, "dialect {d:?}");
            assert!(validate(&conv.log).is_clean(), "dialect {d:?}");
            // identities were anonymized into dense ranges
            assert!(conv.key.users.len() > 1);
        }
    }

    #[test]
    fn emitted_timestamps_use_the_base_epoch() {
        let profile = RawLogProfile::canonical(Dialect::NasaIpsc);
        let raw = generate_raw_log(&profile, 50, 3);
        let first_data = raw.lines().find(|l| !l.starts_with('#')).unwrap();
        let submit: i64 = first_data
            .split_whitespace()
            .nth(4)
            .unwrap()
            .parse()
            .unwrap();
        assert!(submit >= profile.base_epoch);
    }

    #[test]
    fn cm5_partitions_are_powers_of_two() {
        let profile = RawLogProfile::canonical(Dialect::LanlCm5);
        let raw = generate_raw_log(&profile, 200, 5);
        for line in raw.lines().filter(|l| !l.starts_with('#')) {
            let psize: u32 = line.split(',').nth(4).unwrap().parse().unwrap();
            assert!(psize.is_power_of_two() && psize >= 32, "partition {psize}");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let profile = RawLogProfile::canonical(Dialect::CtcSp2);
        assert_eq!(
            generate_raw_log(&profile, 100, 11),
            generate_raw_log(&profile, 100, 11)
        );
    }

    #[test]
    fn paragon_interactive_jobs_marked() {
        let profile = RawLogProfile::canonical(Dialect::SdscParagon);
        let raw = generate_raw_log(&profile, 400, 9);
        assert!(raw.lines().any(|l| l.contains("|interactive|")));
        assert!(raw.lines().any(|l| l.contains("|batch|")));
    }
}
