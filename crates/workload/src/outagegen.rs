//! Generators of outage logs in the standard outage format.
//!
//! The paper proposes (Section 2.2) that outage data — node failures, network
//! interruptions, scheduled maintenance, dedicated time — be collected in a standard
//! format keyed to the job trace. Production outage archives are not publicly
//! available, so this module synthesizes them: per-node exponential failures with
//! exponential repair, weekly maintenance windows, and occasional dedicated time,
//! emitted as [`psbench_swf::outage::OutageLog`].

use crate::dist::exponential;
use crate::model::model_rng;
use psbench_swf::outage::{OutageKind, OutageLog, OutageRecord};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Parameters of the synthetic failure / maintenance process.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OutageGenerator {
    /// Machine size (number of nodes).
    pub machine_size: u32,
    /// Mean time between failures of a single node, seconds.
    pub node_mtbf: f64,
    /// Mean repair time of a failed node, seconds.
    pub mean_repair: f64,
    /// Fraction of failures that are announced in advance (most are surprises).
    pub announced_failure_fraction: f64,
    /// Interval between scheduled maintenance windows, seconds (0 disables them).
    pub maintenance_interval: i64,
    /// Duration of each maintenance window, seconds.
    pub maintenance_duration: i64,
    /// Fraction of the machine taken down by maintenance (1.0 = whole machine).
    pub maintenance_fraction: f64,
    /// How far in advance maintenance is announced, seconds.
    pub maintenance_notice: i64,
}

impl Default for OutageGenerator {
    fn default() -> Self {
        OutageGenerator {
            machine_size: 128,
            node_mtbf: 60.0 * 86_400.0, // two months per node
            mean_repair: 4.0 * 3600.0,
            announced_failure_fraction: 0.1,
            maintenance_interval: 7 * 86_400,
            maintenance_duration: 6 * 3600,
            maintenance_fraction: 1.0,
            maintenance_notice: 3 * 86_400,
        }
    }
}

impl OutageGenerator {
    /// Generator with the default parameters for a machine of the given size.
    pub fn for_machine(machine_size: u32) -> Self {
        OutageGenerator {
            machine_size,
            ..OutageGenerator::default()
        }
    }

    /// Generate an outage log covering `[0, horizon)` seconds.
    pub fn generate(&self, horizon: i64, seed: u64) -> OutageLog {
        let mut rng = model_rng(seed);
        let mut records = Vec::new();

        // Independent per-node failure/repair processes.
        for node in 0..self.machine_size {
            let mut t = 0.0f64;
            loop {
                t += exponential(&mut rng, self.node_mtbf);
                if t >= horizon as f64 {
                    break;
                }
                let repair = exponential(&mut rng, self.mean_repair).max(60.0);
                let start = t.round() as i64;
                let end = ((t + repair).round() as i64).min(horizon);
                let announced = if rng.gen_bool(self.announced_failure_fraction.clamp(0.0, 1.0)) {
                    Some((start - 3600).max(0))
                } else {
                    Some(start)
                };
                let kind = if rng.gen_bool(0.8) {
                    OutageKind::CpuFailure
                } else if rng.gen_bool(0.5) {
                    OutageKind::NetworkFailure
                } else {
                    OutageKind::StorageFailure
                };
                records.push(OutageRecord {
                    outage_id: 0,
                    announced_time: announced,
                    start_time: start,
                    end_time: end,
                    kind,
                    nodes_affected: Some(1),
                    components: vec![node],
                });
                t += repair;
            }
        }

        // Scheduled maintenance windows.
        if self.maintenance_interval > 0 {
            let affected = ((self.machine_size as f64) * self.maintenance_fraction.clamp(0.0, 1.0))
                .round() as u32;
            let mut t = self.maintenance_interval;
            while t < horizon {
                records.push(OutageRecord {
                    outage_id: 0,
                    announced_time: Some((t - self.maintenance_notice).max(0)),
                    start_time: t,
                    end_time: (t + self.maintenance_duration).min(horizon),
                    kind: OutageKind::Maintenance,
                    nodes_affected: Some(affected),
                    components: (0..affected).collect(),
                });
                t += self.maintenance_interval;
            }
        }

        OutageLog::from_records(records)
    }

    /// Expected fraction of machine capacity lost to node failures alone
    /// (repair / (MTBF + repair)), for sanity checks and reports.
    pub fn expected_failure_unavailability(&self) -> f64 {
        self.mean_repair / (self.node_mtbf + self.mean_repair)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const WEEK: i64 = 7 * 86_400;

    #[test]
    fn generates_failures_and_maintenance() {
        let gen = OutageGenerator::default();
        let log = gen.generate(8 * WEEK, 1);
        assert!(!log.is_empty());
        let failures = log
            .outages
            .iter()
            .filter(|o| !o.kind.is_scheduled())
            .count();
        let maint = log
            .outages
            .iter()
            .filter(|o| o.kind == OutageKind::Maintenance)
            .count();
        assert!(failures > 20, "failures {failures}");
        assert_eq!(maint, 7); // weekly maintenance, 8 weeks horizon, first at t=1 week
    }

    #[test]
    fn outages_sorted_and_within_horizon() {
        let log = OutageGenerator::default().generate(4 * WEEK, 2);
        assert!(log
            .outages
            .windows(2)
            .all(|w| w[0].start_time <= w[1].start_time));
        assert!(log
            .outages
            .iter()
            .all(|o| o.start_time >= 0 && o.end_time <= 4 * WEEK));
        assert!(log.outages.iter().all(|o| o.end_time >= o.start_time));
        // ids renumbered 1..n
        assert!(log
            .outages
            .iter()
            .enumerate()
            .all(|(i, o)| o.outage_id == i as u64 + 1));
    }

    #[test]
    fn maintenance_is_announced_failures_mostly_not() {
        let log = OutageGenerator::default().generate(8 * WEEK, 3);
        for o in &log.outages {
            if o.kind == OutageKind::Maintenance {
                assert!(o.was_announced_in_advance());
                assert!(o.warning_time() >= 2 * 86_400);
            }
        }
        let surprise = log
            .outages
            .iter()
            .filter(|o| !o.kind.is_scheduled() && !o.was_announced_in_advance())
            .count();
        let announced = log
            .outages
            .iter()
            .filter(|o| !o.kind.is_scheduled() && o.was_announced_in_advance())
            .count();
        assert!(
            surprise > announced,
            "surprise {surprise} announced {announced}"
        );
    }

    #[test]
    fn lost_capacity_roughly_matches_expectation() {
        let gen = OutageGenerator {
            maintenance_interval: 0, // failures only for this check
            machine_size: 256,
            ..OutageGenerator::default()
        };
        let horizon = 26 * WEEK;
        let log = gen.generate(horizon, 4);
        let lost = log.lost_node_seconds(horizon) as f64;
        let capacity = (gen.machine_size as i64 * horizon) as f64;
        let observed = lost / capacity;
        let expected = gen.expected_failure_unavailability();
        assert!(
            (observed - expected).abs() / expected < 0.5,
            "observed {observed}, expected {expected}"
        );
    }

    #[test]
    fn no_maintenance_when_disabled() {
        let gen = OutageGenerator {
            maintenance_interval: 0,
            ..OutageGenerator::default()
        };
        let log = gen.generate(4 * WEEK, 5);
        assert!(log
            .outages
            .iter()
            .all(|o| o.kind != OutageKind::Maintenance));
    }

    #[test]
    fn deterministic_given_seed_and_round_trips() {
        let gen = OutageGenerator::for_machine(64);
        let a = gen.generate(2 * WEEK, 9);
        let b = gen.generate(2 * WEEK, 9);
        assert_eq!(a, b);
        let text = a.write_string();
        let back = OutageLog::parse(&text).unwrap();
        assert_eq!(back.outages, a.outages);
    }
}
