//! The work-stealing scoped-thread pool shared by the experiment harness
//! (`psbench_core::harness`) and the metasystem shard loop
//! (`psbench_metasim::epoch`).
//!
//! This crate is a dependency leaf: it sits below both `psbench-core` and
//! `psbench-metasim` so the two can share one pool implementation without a
//! cycle (`psbench-core` depends on `psbench-metasim` for experiment E7).
//!
//! Both entry points guarantee **bit-identical results for any thread
//! count**: work items never interact mid-flight, results come back in input
//! order, and `threads == 1` takes a plain sequential loop — the serial twin
//! every parallel run must match.

#![warn(missing_docs)]

use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Number of worker threads the parallel entry points use by default: one per
/// available hardware thread.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Map `f` over `0..n` on a small work-stealing pool of scoped threads.
///
/// Workers pull the next undone index from a shared atomic counter, so long
/// and short tasks balance across threads. Results come back in input order,
/// and each call `f(i)` sees exactly the same inputs as in a sequential loop —
/// every run seeds its own RNG from data carried by the task itself, so the
/// output is bit-identical to `(0..n).map(f).collect()`.
///
/// # Panics
/// Propagates a panic from any worker once all threads have been joined.
pub fn parallel_map<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = threads.clamp(1, n.max(1));
    if threads == 1 {
        return (0..n).map(f).collect();
    }
    let results: Mutex<Vec<Option<T>>> = Mutex::new((0..n).map(|_| None).collect());
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let value = f(i);
                results.lock()[i] = Some(value);
            });
        }
    });
    results
        .into_inner()
        .into_iter()
        .map(|r| r.expect("every index produces a result"))
        .collect()
}

/// A `Sync` view over a mutable slice handed out one disjoint element at a
/// time. Safety rests on the work-stealing counter in [`parallel_map_mut`]:
/// `fetch_add` yields every index to exactly one worker, so no element is
/// ever aliased.
struct Slots<T>(*mut T);
unsafe impl<T: Send> Sync for Slots<T> {}

impl<T> Slots<T> {
    /// Raw pointer to element `i`. Going through a method (rather than the
    /// field) keeps edition-2021 closures capturing `&Slots<T>` — which is
    /// `Sync` — instead of the bare `*mut T` field, which is not.
    fn at(&self, i: usize) -> *mut T {
        // SAFETY: callers only pass `i < n` (checked at the call site).
        unsafe { self.0.add(i) }
    }
}

/// Run `f(i, &mut items[i])` for every element of `items` on a work-stealing
/// pool of scoped threads, returning the per-element results in input order.
///
/// This is the in-place twin of [`parallel_map`] for work items that own
/// heavy mutable state (e.g. a simulation engine shard): each element is
/// claimed by exactly one worker via an atomic counter, mutated through a
/// disjoint `&mut`, and never touched by two threads. With `threads == 1`
/// this is a plain sequential `for` loop over the slice — the serial twin —
/// and because elements never interact mid-call, results (and all mutations)
/// are bit-identical for any thread count.
///
/// # Panics
/// Propagates a panic from any worker once all threads have been joined.
pub fn parallel_map_mut<T, R, F>(items: &mut [T], threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, &mut T) -> R + Sync,
{
    let n = items.len();
    let threads = threads.clamp(1, n.max(1));
    if threads == 1 {
        return items.iter_mut().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let results: Mutex<Vec<Option<R>>> = Mutex::new((0..n).map(|_| None).collect());
    let next = AtomicUsize::new(0);
    let slots = Slots(items.as_mut_ptr());
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                // SAFETY: `i < n` is in bounds, and the atomic counter hands
                // each index to exactly one worker, so this `&mut` is unique.
                let item = unsafe { &mut *slots.at(i) };
                let value = f(i, item);
                results.lock()[i] = Some(value);
            });
        }
    });
    results
        .into_inner()
        .into_iter()
        .map(|r| r.expect("every index produces a result"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_matches_sequential_for_any_thread_count() {
        let seq: Vec<u64> = (0..97)
            .map(|i| (i as u64).wrapping_mul(2654435761))
            .collect();
        for threads in [1usize, 2, 3, 8, 64] {
            let par = parallel_map(97, threads, |i| (i as u64).wrapping_mul(2654435761));
            assert_eq!(par, seq, "threads = {threads}");
        }
    }

    #[test]
    fn parallel_map_handles_empty_input() {
        let out: Vec<u32> = parallel_map(0, 8, |_| unreachable!());
        assert!(out.is_empty());
    }

    #[test]
    fn parallel_map_mut_mutates_each_element_exactly_once() {
        for threads in [1usize, 2, 8] {
            let mut items: Vec<u64> = (0..131).collect();
            let returns = parallel_map_mut(&mut items, threads, |i, v| {
                *v += 1000;
                *v * (i as u64 + 1)
            });
            let expected_items: Vec<u64> = (0..131).map(|i| i + 1000).collect();
            let expected_returns: Vec<u64> = (0..131u64).map(|i| (i + 1000) * (i + 1)).collect();
            assert_eq!(items, expected_items, "threads = {threads}");
            assert_eq!(returns, expected_returns, "threads = {threads}");
        }
    }

    #[test]
    fn parallel_map_mut_handles_empty_slice() {
        let mut items: Vec<u32> = Vec::new();
        let out: Vec<()> = parallel_map_mut(&mut items, 8, |_, _| unreachable!());
        assert!(out.is_empty());
    }

    #[test]
    fn parallel_map_mut_balances_uneven_work() {
        // Long and short tasks mixed: the atomic counter hands out indexes
        // one at a time, so stragglers don't serialize the batch. This test
        // just asserts correctness, not timing.
        let mut items: Vec<u64> = (0..40).collect();
        parallel_map_mut(&mut items, 4, |i, v| {
            let spins = if i % 7 == 0 { 5000 } else { 10 };
            let mut acc = *v;
            for _ in 0..spins {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
            *v = acc;
        });
        let expected: Vec<u64> = (0..40u64)
            .map(|i| {
                let spins = if i % 7 == 0 { 5000 } else { 10 };
                let mut acc = i;
                for _ in 0..spins {
                    acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
                }
                acc
            })
            .collect();
        assert_eq!(items, expected);
    }
}
