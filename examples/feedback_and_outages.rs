//! Workload realism beyond rigid open-loop traces: feedback (user sessions with
//! think times, SWF fields 17/18) and outages (the standard outage format), the two
//! extensions Section 2.2 of the paper calls for.
//!
//! Run with: `cargo run --release --example feedback_and_outages`

use psbench::core::{run_experiment, Scale};
use psbench::swf::write_string;
use psbench::workload::{
    dependency_chains, infer_dependencies, InferenceParams, Lublin99, SessionModel, WorkloadModel,
};

fn main() {
    // 1. Generate a closed-loop session workload: the dependencies are carried in
    //    the standard's preceding-job / think-time fields.
    let sessions = SessionModel::default().generate(1_500, 77);
    let dependent = sessions
        .summaries()
        .filter(|j| j.preceding_job.is_some())
        .count();
    let chains = dependency_chains(&sessions);
    println!(
        "session workload: {} jobs, {} with explicit dependencies, {} chains, longest chain {}",
        sessions.len(),
        dependent,
        chains.len(),
        chains.iter().map(|c| c.len()).max().unwrap_or(0)
    );
    println!(
        "example SWF line with feedback fields: {}",
        write_string(&sessions)
            .lines()
            .find(|l| !l.starts_with(';') && l.split_whitespace().nth(16) != Some("-1"))
            .unwrap_or("")
    );

    // 2. The paper's methodology for existing logs: infer dependencies from rapid
    //    same-user successions.
    let mut plain = Lublin99::default().generate(1_500, 78);
    let report = infer_dependencies(&mut plain, &InferenceParams::default());
    println!(
        "inferred feedback in a Lublin'99 trace: {} dependent jobs in {} chains",
        report.dependent_jobs, report.chains
    );

    // 3. What the feedback does to the measurements (experiment E4)...
    let e4 = run_experiment("E4", Scale::quick()).unwrap();
    println!("\n{}", e4.to_markdown());

    // 4. ...and what outages do (experiment E5).
    let e5 = run_experiment("E5", Scale::quick()).unwrap();
    println!("{}", e5.to_markdown());
}
