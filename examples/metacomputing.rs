//! Metacomputing (Sections 3–4): the Figure-1 scheduling hierarchy, micro-benchmark
//! meta-applications scheduled across heterogeneous sites, and co-allocation via
//! queues versus advance reservations.
//!
//! Run with: `cargo run --release --example metacomputing`

use psbench::metasim::{
    build_hierarchy, coallocate_via_queues, coallocate_via_reservations, mixed_workload,
    standard_metasystem, AppScheduler, CoallocationRequest, DeviceMap, MicroBenchmark, Network,
    PlacementStrategy,
};

fn main() {
    let sites = standard_metasystem(4, 2024);
    println!("== the metasystem ==");
    for s in &sites {
        println!(
            "site {}: {:>4} procs, speed {:.1}x, load {:.0}%, price {:.1}/proc-s, reservations: {}",
            s.spec.id,
            s.spec.procs,
            s.spec.speed,
            s.spec.background_load * 100.0,
            s.spec.cost_per_proc_second,
            s.spec.supports_reservations
        );
    }

    println!("\n== Figure 1: entities involved in scheduling ==");
    for e in build_hierarchy(&sites, 2) {
        println!(
            "{:?} {:>28} -> {} downstream",
            e.kind,
            e.name,
            e.children.len()
        );
    }

    println!("\n== placement strategies on a mixed micro-benchmark workload ==");
    let apps = mixed_workload(
        30,
        1800.0,
        &[
            (MicroBenchmark::ComputeIntensive, 1.0),
            (MicroBenchmark::CommunicationIntensive, 1.0),
            (MicroBenchmark::DeviceConstrained, 1.0),
        ],
        7,
    );
    for &strategy in PlacementStrategy::all() {
        let mut sites = standard_metasystem(4, 2024);
        let devices = DeviceMap::spread_over(&sites);
        let mut sched = AppScheduler::new(strategy, Network::default());
        let mut makespan = 0.0;
        let mut cost = 0.0;
        for (t, app) in &apps {
            let s = sched.schedule(app, &mut sites, &devices, *t);
            makespan += s.makespan;
            cost += s.cost;
        }
        println!(
            "{:>18}: mean turnaround {:>9.0} s, total cost {:>12.0}",
            strategy.name(),
            makespan / apps.len() as f64,
            cost
        );
    }

    println!("\n== co-allocation: queues versus advance reservations ==");
    let req = CoallocationRequest {
        parts: 3,
        procs: 64,
        duration: 3600.0,
    };
    let mut q_sites = standard_metasystem(4, 11);
    let q = coallocate_via_queues(&req, &mut q_sites, 0.0, 300.0);
    let mut r_sites = standard_metasystem(4, 11);
    let r = coallocate_via_reservations(&req, &mut r_sites, 0.0, 3600.0).unwrap();
    for o in [q, r] {
        println!(
            "{:>13}: start {:>7.0} s, synchronized: {:>5}, wasted node-seconds {:>10.0}",
            o.mechanism, o.start, o.synchronized, o.wasted_node_seconds
        );
    }
}
