//! The "apples-to-apples" comparison the benchmark standard enables: the canonical
//! workload suite crossed with the canonical scheduler line-up, printed as the
//! WARMstones-style scenario table (experiment E8 at a reduced scale), followed by
//! the outage experiment (E5).
//!
//! Run with: `cargo run --release --example scheduler_comparison`

use psbench::core::{
    canonical_schedulers, canonical_suite, results_table, run_all_parallel, Scale, Scenario,
};

fn main() {
    // Every canonical workload crossed with every canonical scheduler.
    let mut scenarios = Vec::new();
    for def in canonical_suite(600) {
        for sched in canonical_schedulers() {
            scenarios.push(Scenario::new(
                format!("{}/{}", def.kind.name(), sched),
                def,
                sched,
            ));
        }
    }
    println!(
        "running {} scenarios ({} workloads x {} schedulers) in parallel...",
        scenarios.len(),
        canonical_suite(600).len(),
        canonical_schedulers().len()
    );
    let results = run_all_parallel(&scenarios, 8);
    let table = results_table("Canonical suite x canonical schedulers", &results);
    println!("{}", table.to_markdown());

    // The outage experiment: what ignoring outage information costs.
    let e5 = psbench::core::run_experiment("E5", Scale::quick()).unwrap();
    println!("{}", e5.to_markdown());
}
