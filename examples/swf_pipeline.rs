//! The SWF standardization pipeline: heterogeneous raw accounting logs in, one
//! clean anonymized standard format out, plus the companion outage log.
//!
//! Run with: `cargo run --release --example swf_pipeline`

use psbench::swf::convert::{convert, ConvertOptions, Dialect};
use psbench::swf::{validate, write_string};
use psbench::workload::{generate_raw_log, OutageGenerator, RawLogProfile};

fn main() {
    println!("== converting four raw accounting-log dialects to SWF v2 ==");
    for &dialect in Dialect::all() {
        let profile = RawLogProfile::canonical(dialect);
        let raw = generate_raw_log(&profile, 1_000, 7);
        let conv = convert(
            &raw,
            dialect,
            Some(profile.machine_size),
            &ConvertOptions::default(),
        )
        .expect("conversion succeeds");
        let report = validate(&conv.log);
        println!(
            "{:>14}: {} raw lines -> {} SWF jobs, {} users, {} executables, {} violations, cleaned: dropped={} clamped_procs={}",
            dialect.name(),
            raw.lines().count(),
            conv.log.len(),
            conv.key.users.len(),
            conv.key.executables.len(),
            report.violations.len(),
            conv.cleaning.dropped,
            conv.cleaning.clamped_procs,
        );
        // The converted log round-trips through the textual format.
        let text = write_string(&conv.log);
        let back = psbench::swf::parse(&text).unwrap();
        assert_eq!(back.jobs, conv.log.jobs);
    }

    println!("\n== the standard outage format (Section 2.2) ==");
    let outages = OutageGenerator::for_machine(128).generate(30 * 86_400, 99);
    println!(
        "{} outages over 30 days, {} node-seconds lost, {} announced in advance",
        outages.len(),
        outages.lost_node_seconds(30 * 86_400),
        outages
            .outages
            .iter()
            .filter(|o| o.was_announced_in_advance())
            .count()
    );
    let text = outages.write_string();
    println!("first outage line: {}", text.lines().nth(1).unwrap_or(""));
}
