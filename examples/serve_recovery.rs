//! Crash-recovery walkthrough: a journaled serve session survives a server
//! "crash" (stop without drain), resumes by write-ahead journal replay on
//! the next start, and drains to the exact result an uninterrupted session
//! would have produced.
//!
//! Run with: `cargo run --example serve_recovery`

use psbench::serve::{run_script, serve, ClockMode, ServeConfig};
use psbench::store::decode_result;

fn main() {
    let state_dir =
        std::env::temp_dir().join(format!("psbench-recovery-demo-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&state_dir);
    let config = ServeConfig {
        scheduler: "conservative".into(),
        machine: 64,
        mode: ClockMode::Afap,
        max_sessions: 8,
        state_dir: Some(state_dir.clone()),
        ..ServeConfig::default()
    };

    // ---- Day one: a named session does real work. Every mutating command
    // is appended to <state_dir>/sessions/etl.journal before it is applied,
    // and fsynced (the default policy) before the client sees `ok`.
    let server = serve("127.0.0.1:0", config.clone()).expect("bind server");
    println!("first server on {}", server.addr());
    let first_leg = [
        "hello psbench-serve/1 session=etl",
        "submit id=1 submit=0 runtime=1800 procs=64 seq=1",
        "submit id=2 submit=120 runtime=600 procs=32 estimate=900 seq=2",
        "advance to=400 seq=3",
        "query queue",
    ];
    let transcript = run_script(server.addr(), &first_leg).expect("first leg");
    for (line, reply) in first_leg.iter().zip(&transcript.replies) {
        println!("> {line}\n< {reply}");
    }

    // ---- The crash: the server goes down with the session mid-flight.
    // Nothing was drained, no goodbye was said. All that survives is the
    // journal.
    server.stop();
    let journal = state_dir.join("sessions").join("etl.journal");
    println!("\n--- crash! all that is left is the write-ahead journal ---");
    print!("{}", std::fs::read_to_string(&journal).expect("journal"));

    // ---- Day two: a new server on the same state dir recovers the journal
    // at startup; re-attaching by name resumes at seq=3 with the engine
    // state rebuilt by deterministic replay.
    let server = serve("127.0.0.1:0", config).expect("bind second server");
    println!("\nsecond server on {}", server.addr());
    let second_leg = [
        "hello psbench-serve/1 session=etl",
        "submit id=3 submit=900 runtime=300 procs=8 seq=4",
        "advance to=4000 seq=5",
        "drain seq=6",
        "bye",
    ];
    let transcript = run_script(server.addr(), &second_leg).expect("second leg");
    for (line, reply) in second_leg.iter().zip(&transcript.replies) {
        println!("> {line}\n< {reply}");
    }

    let drain = transcript.payload("drain").expect("drain payload");
    let result =
        decode_result(&String::from_utf8_lossy(&drain.body)).expect("decode drained result");
    let agg = result.aggregate();
    println!("\n--- drained after recovery ---");
    println!("scheduler:     {}", result.scheduler);
    println!("jobs finished: {}", agg.jobs);
    println!("mean wait:     {:.1} s", agg.wait_time.mean);

    // The drained session cleaned its journal up; the state dir is reusable.
    println!("journal removed after drain: {}", !journal.exists());
    server.stop();
    let _ = std::fs::remove_dir_all(&state_dir);
}
