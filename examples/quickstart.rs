//! Quickstart: generate a standard workload, write it in SWF, simulate two
//! schedulers on it, and compare them with the standard metrics.
//!
//! Run with: `cargo run --release --example quickstart`

use psbench::metrics::{objectives_disagree, rank_by_objective, Objective};
use psbench::sched::by_name;
use psbench::sim::{SimConfig, SimJob, Simulation};
use psbench::swf::{validate, write_string};
use psbench::workload::{Lublin99, WorkloadModel};

fn main() {
    // 1. Generate a canonical workload with the Lublin '99 model on 128 nodes.
    let model = Lublin99::default();
    let log = model.generate(2_000, 1999);
    println!(
        "generated {} jobs, offered load {:.2}, machine {} nodes",
        log.len(),
        log.offered_load().unwrap_or(0.0),
        log.machine_size()
    );

    // 2. It is a conforming Standard Workload Format log: validate and serialize it.
    let report = validate(&log);
    println!("validation violations: {}", report.violations.len());
    let text = write_string(&log);
    println!(
        "SWF text: {} bytes, first line: {}",
        text.len(),
        text.lines().next().unwrap()
    );

    // 3. Replay it through two schedulers.
    let jobs = SimJob::from_log(&log);
    let mut results = Vec::new();
    for name in ["fcfs", "easy"] {
        let mut sched = by_name(name, log.machine_size()).unwrap();
        let result =
            Simulation::new(SimConfig::new(log.machine_size()), jobs.clone()).run(sched.as_mut());
        println!(
            "{:>6}: mean wait {:>8.0} s, mean response {:>8.0} s, bounded slowdown {:>6.1}, utilization {:.2}",
            name,
            result.aggregate().wait_time.mean,
            result.mean_response_time(),
            result.mean_bounded_slowdown(),
            result.system().utilization
        );
        results.push(result.scheduler_result());
    }

    // 4. Rank them under two standard objectives and check whether they disagree.
    let by_response = rank_by_objective(&results, Objective::MeanResponseTime);
    let by_slowdown = rank_by_objective(&results, Objective::MeanBoundedSlowdown);
    println!("ranking by response time : {by_response:?}");
    println!("ranking by slowdown      : {by_slowdown:?}");
    println!(
        "metrics disagree: {}",
        objectives_disagree(
            &results,
            Objective::MeanResponseTime,
            Objective::MeanBoundedSlowdown
        )
    );
}
