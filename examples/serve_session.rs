//! Spin up the online scheduling service in-process, drive a scripted
//! session against it, and print the drained report.
//!
//! Run with: `cargo run --example serve_session`

use psbench::serve::{run_script, serve, ClockMode, ServeConfig};
use psbench::store::decode_result;

fn main() {
    // An in-process server on an ephemeral port: EASY backfilling on a
    // 64-processor machine, as-fast-as-possible virtual time.
    let server = serve(
        "127.0.0.1:0",
        ServeConfig {
            scheduler: "easy".into(),
            machine: 64,
            mode: ClockMode::Afap,
            max_sessions: 8,
            ..ServeConfig::default()
        },
    )
    .expect("bind server");
    println!("server listening on {}\n", server.addr());

    // A session: a wide job grabs the machine, two more queue behind it, and
    // we ask what-if questions before draining.
    let script = [
        "hello psbench-serve/1",
        "submit id=1 submit=0 runtime=3600 procs=64",
        "submit id=2 submit=60 runtime=600 procs=32 estimate=900",
        "submit id=3 submit=120 runtime=300 procs=8 estimate=400",
        "advance to=200",
        "query queue",
        "query job 2",
        "whatif 2 under easy",
        "whatif 2 under conservative",
        "whatif 3 under fcfs",
        "trace",
        "drain",
        "bye",
    ];
    let transcript = run_script(server.addr(), &script).expect("run session");
    for (line, reply) in script.iter().zip(&transcript.replies) {
        println!("> {line}");
        println!("< {reply}");
    }

    let trace = transcript.payload("trace").expect("trace payload");
    println!("\n--- exported SWF trace ---");
    print!("{}", String::from_utf8_lossy(&trace.body));

    let drain = transcript.payload("drain").expect("drain payload");
    let result =
        decode_result(&String::from_utf8_lossy(&drain.body)).expect("decode drained result");
    let agg = result.aggregate();
    let sys = result.system();
    println!("\n--- drained report ---");
    println!("scheduler:          {}", result.scheduler);
    println!("machine:            {} procs", result.machine_size);
    println!("jobs finished:      {}", agg.jobs);
    println!("mean wait:          {:.1} s", agg.wait_time.mean);
    println!("mean response:      {:.1} s", agg.response_time.mean);
    println!("utilization:        {:.4}", sys.utilization);
    println!("loss of capacity:   {:.4}", sys.loss_of_capacity);

    server.stop();
}
